//! The compile-once / evaluate-many execution kernel.
//!
//! PR 1's streaming executor removed *materialization* overhead (no more
//! whole-stage `Vec<Document>` copies); what remained was *interpretation*
//! overhead: every stage re-split its dotted paths per document, resolved
//! them into cloned `Value`s, and keyed `$group`/`$lookup` hash tables on
//! fully cloned [`OrdValue`](crate::ordvalue::OrdValue)s. This module
//! compiles the per-stage specifications once and evaluates them many
//! times by reference:
//!
//! * [`CompiledExpr`] mirrors [`Expr`] with every field path pre-split
//!   into a [`CompiledPath`]; [`CompiledExpr::eval_ref`] returns a
//!   [`Resolved`] that borrows scalars straight out of the document
//!   (only multikey array fan-out and computed values are owned);
//! * [`GroupKernel`] hashes group keys as canonical key *bytes* (the
//!   [`crate::keybytes`] encoding) into a reusable scratch buffer, so
//!   probing the group table costs zero allocations; the first-seen key
//!   `Value` is retained as the representative for `_id` output exactly
//!   like the legacy `OrdValue` map (the unified bytes deliberately
//!   cannot be decoded back to `Int32`-vs-`Double`);
//! * [`CompiledSortSpec`] extracts sort keys once per document as
//!   borrowed [`Resolved`]s (decorate–sort–undecorate) instead of
//!   cloning every key per *comparison*;
//! * [`CompiledProject`] pre-splits projection paths and pre-compiles
//!   computed expressions;
//! * [`lookup_stage`] builds the `$lookup` hash table over documents
//!   *borrowed* from the foreign collection (via
//!   [`LookupSource::with_collection_docs`]) keyed by canonical bytes,
//!   cloning only the rows that actually join.
//!
//! The interpreted forms ([`Expr::eval`], [`crate::query::matches`])
//! stay untouched as the reference implementations the equivalence
//! proptests compare against.

use super::accum::{AccState, Accumulator};
use super::exec::LookupSource;
use super::expr::{self, Expr};
use super::stage::{GroupId, ProjectField};
use crate::error::{Error, Result};
use crate::keybytes;
use doclite_bson::{CompiledPath, Document, Resolved, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

pub use crate::query::filter::CmpOp;

/// An [`Expr`] compiled for repeated evaluation: identical semantics
/// (including error messages), but field paths are pre-split and
/// [`eval_ref`](CompiledExpr::eval_ref) borrows literals and scalar
/// field values instead of cloning them.
#[derive(Clone, Debug)]
pub enum CompiledExpr {
    Literal(Value),
    Field(CompiledPath),
    Doc(Vec<(String, CompiledExpr)>),
    Cond {
        cond: Box<CompiledExpr>,
        then: Box<CompiledExpr>,
        otherwise: Box<CompiledExpr>,
    },
    Cmp(CmpOp, Box<CompiledExpr>, Box<CompiledExpr>),
    And(Vec<CompiledExpr>),
    Or(Vec<CompiledExpr>),
    Not(Box<CompiledExpr>),
    Add(Vec<CompiledExpr>),
    Subtract(Box<CompiledExpr>, Box<CompiledExpr>),
    Multiply(Vec<CompiledExpr>),
    Divide(Box<CompiledExpr>, Box<CompiledExpr>),
    In(Box<CompiledExpr>, Box<CompiledExpr>),
    IfNull(Box<CompiledExpr>, Box<CompiledExpr>),
    Concat(Vec<CompiledExpr>),
}

impl CompiledExpr {
    /// Compiles an expression tree (pre-splitting every `Field` path).
    pub fn new(e: &Expr) -> Self {
        let boxed = |e: &Expr| Box::new(CompiledExpr::new(e));
        let list = |es: &[Expr]| es.iter().map(CompiledExpr::new).collect();
        match e {
            Expr::Literal(v) => CompiledExpr::Literal(v.clone()),
            Expr::Field(path) => CompiledExpr::Field(CompiledPath::new(path)),
            Expr::Doc(fields) => CompiledExpr::Doc(
                fields.iter().map(|(k, e)| (k.clone(), CompiledExpr::new(e))).collect(),
            ),
            Expr::Cond { cond, then, otherwise } => CompiledExpr::Cond {
                cond: boxed(cond),
                then: boxed(then),
                otherwise: boxed(otherwise),
            },
            Expr::Cmp(op, a, b) => CompiledExpr::Cmp(*op, boxed(a), boxed(b)),
            Expr::And(es) => CompiledExpr::And(list(es)),
            Expr::Or(es) => CompiledExpr::Or(list(es)),
            Expr::Not(e) => CompiledExpr::Not(boxed(e)),
            Expr::Add(es) => CompiledExpr::Add(list(es)),
            Expr::Subtract(a, b) => CompiledExpr::Subtract(boxed(a), boxed(b)),
            Expr::Multiply(es) => CompiledExpr::Multiply(list(es)),
            Expr::Divide(a, b) => CompiledExpr::Divide(boxed(a), boxed(b)),
            Expr::In(n, h) => CompiledExpr::In(boxed(n), boxed(h)),
            Expr::IfNull(e, f) => CompiledExpr::IfNull(boxed(e), boxed(f)),
            Expr::Concat(es) => CompiledExpr::Concat(list(es)),
        }
    }

    /// Evaluates against a document, borrowing wherever possible:
    /// literals borrow from the compiled tree, field paths borrow from
    /// the document (owned only on multikey fan-out), and only computed
    /// results (`$add`, `$concat`, document constructors, …) are owned.
    /// Missing fields evaluate to `Null`, exactly like [`Expr::eval`].
    pub fn eval_ref<'a>(&'a self, doc: &'a Document) -> Result<Resolved<'a>> {
        match self {
            CompiledExpr::Literal(v) => Ok(Resolved::Borrowed(v)),
            // The closure is load-bearing: as a fn item `Resolved::null`
            // fixes the result lifetime to 'static, which E0521-rejects
            // unifying with the `doc` borrow. The closure lets the
            // 'static result coerce covariantly.
            #[allow(clippy::redundant_closure)]
            CompiledExpr::Field(path) => Ok(path.resolve(doc).unwrap_or_else(|| Resolved::null())),
            CompiledExpr::Doc(fields) => {
                let mut out = Document::with_capacity(fields.len());
                for (k, e) in fields {
                    out.set(k.clone(), e.eval_ref(doc)?.into_value());
                }
                Ok(Resolved::Owned(Value::Document(out)))
            }
            CompiledExpr::Cond { cond, then, otherwise } => {
                if cond.eval_ref(doc)?.as_value().is_truthy() {
                    then.eval_ref(doc)
                } else {
                    otherwise.eval_ref(doc)
                }
            }
            CompiledExpr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval_ref(doc)?, b.eval_ref(doc)?);
                let ord = va.as_value().canonical_cmp(vb.as_value());
                Ok(Resolved::Owned(Value::Bool(match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Gte => ord != Ordering::Less,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Lte => ord != Ordering::Greater,
                })))
            }
            CompiledExpr::And(es) => {
                for e in es {
                    if !e.eval_ref(doc)?.as_value().is_truthy() {
                        return Ok(Resolved::Owned(Value::Bool(false)));
                    }
                }
                Ok(Resolved::Owned(Value::Bool(true)))
            }
            CompiledExpr::Or(es) => {
                for e in es {
                    if e.eval_ref(doc)?.as_value().is_truthy() {
                        return Ok(Resolved::Owned(Value::Bool(true)));
                    }
                }
                Ok(Resolved::Owned(Value::Bool(false)))
            }
            CompiledExpr::Not(e) => {
                Ok(Resolved::Owned(Value::Bool(!e.eval_ref(doc)?.as_value().is_truthy())))
            }
            CompiledExpr::Add(es) => fold_numeric(es, doc, "$add", |a, b| a + b),
            CompiledExpr::Multiply(es) => fold_numeric(es, doc, "$multiply", |a, b| a * b),
            CompiledExpr::Subtract(a, b) => {
                let (va, vb) = (a.eval_ref(doc)?, b.eval_ref(doc)?);
                expr::binary_numeric(va.as_value(), vb.as_value(), "$subtract", |x, y| x - y)
                    .map(Resolved::Owned)
            }
            CompiledExpr::Divide(a, b) => {
                let (va, vb) = (a.eval_ref(doc)?, b.eval_ref(doc)?);
                let (va, vb) = (va.as_value(), vb.as_value());
                if va.is_null() || vb.is_null() {
                    return Ok(Resolved::Owned(Value::Null));
                }
                let x = expr::numeric_operand(va, "$divide")?;
                let y = expr::numeric_operand(vb, "$divide")?;
                Ok(Resolved::Owned(if y == 0.0 { Value::Null } else { Value::Double(x / y) }))
            }
            CompiledExpr::In(needle, haystack) => {
                let n = needle.eval_ref(doc)?;
                let h = haystack.eval_ref(doc)?;
                match h.as_value() {
                    Value::Array(items) => Ok(Resolved::Owned(Value::Bool(
                        items.iter().any(|i| i.canonical_eq(n.as_value())),
                    ))),
                    other => Err(Error::ExprError(format!(
                        "$in requires an array, got {}",
                        other.type_name()
                    ))),
                }
            }
            CompiledExpr::IfNull(e, fallback) => {
                let v = e.eval_ref(doc)?;
                if v.as_value().is_null() {
                    fallback.eval_ref(doc)
                } else {
                    Ok(v)
                }
            }
            CompiledExpr::Concat(es) => {
                let mut out = String::new();
                for e in es {
                    let v = e.eval_ref(doc)?;
                    match v.as_value() {
                        Value::Null => return Ok(Resolved::Owned(Value::Null)),
                        Value::String(s) => out.push_str(s),
                        other => {
                            return Err(Error::ExprError(format!(
                                "$concat requires strings, got {}",
                                other.type_name()
                            )))
                        }
                    }
                }
                Ok(Resolved::Owned(Value::String(out)))
            }
        }
    }

    /// Owned-result convenience over [`eval_ref`](Self::eval_ref).
    pub fn eval(&self, doc: &Document) -> Result<Value> {
        self.eval_ref(doc).map(Resolved::into_value)
    }
}

fn fold_numeric(
    es: &[CompiledExpr],
    doc: &Document,
    op: &str,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Resolved<'static>> {
    let mut acc: Option<f64> = None;
    let mut integral = true;
    for e in es {
        let v = e.eval_ref(doc)?;
        let v = v.as_value();
        if v.is_null() {
            return Ok(Resolved::Owned(Value::Null));
        }
        integral &= expr::is_integral(v);
        let n = expr::numeric_operand(v, op)?;
        acc = Some(match acc {
            None => n,
            Some(a) => f(a, n),
        });
    }
    Ok(Resolved::Owned(acc.map_or(Value::Null, |n| expr::make_numeric(n, integral))))
}

/// Streaming `$group` state shared by both executors: the id expression
/// and accumulator inputs are compiled once, and the group table is
/// keyed by canonical key bytes encoded into a reusable scratch buffer —
/// an existing group costs one table probe and zero allocations per
/// document. Output order is first appearance, with the first-seen key
/// `Value` as the `_id` representative (identical to the legacy
/// `OrdValue`-keyed map: `{k: 1i32}` then `{k: 1.0}` reports `_id: 1`).
pub(crate) struct GroupKernel<'p> {
    id: CompiledExpr,
    fields: &'p [(String, Accumulator)],
    accs: Vec<CompiledExpr>,
    order: Vec<Value>,
    slots: HashMap<Box<[u8]>, usize>,
    states: Vec<Vec<AccState>>,
    scratch: Vec<u8>,
}

impl<'p> GroupKernel<'p> {
    pub fn new(id: &GroupId, fields: &'p [(String, Accumulator)]) -> Self {
        let id = match id {
            GroupId::Null => CompiledExpr::Literal(Value::Null),
            GroupId::Expr(e) => CompiledExpr::new(e),
        };
        let accs = fields.iter().map(|(_, spec)| CompiledExpr::new(spec.expr())).collect();
        Self {
            id,
            fields,
            accs,
            order: Vec::new(),
            slots: HashMap::new(),
            states: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Folds one document into its group.
    pub fn feed(&mut self, doc: &Document) -> Result<()> {
        let key = self.id.eval_ref(doc)?;
        keybytes::encode_into(key.as_value(), &mut self.scratch);
        let slot = match self.slots.get(self.scratch.as_slice()) {
            Some(&s) => s,
            None => {
                let s = self.states.len();
                self.slots.insert(self.scratch.as_slice().into(), s);
                self.order.push(key.into_value());
                self.states
                    .push(self.fields.iter().map(|(_, a)| AccState::new(a)).collect());
                s
            }
        };
        let states = &mut self.states[slot];
        for (state, acc) in states.iter_mut().zip(&self.accs) {
            state.accumulate_resolved(acc.eval_ref(doc)?);
        }
        Ok(())
    }

    /// Locates (or creates) the bucket for an already-evaluated group
    /// key — the entry point for batch executors that compute keys
    /// outside [`feed`](Self::feed) (the columnar kernel reads them off
    /// column vectors). The key clones only when the bucket is new,
    /// preserving the first-seen representative semantics.
    pub fn bucket_for(&mut self, key: &Value) -> usize {
        keybytes::encode_into(key, &mut self.scratch);
        match self.slots.get(self.scratch.as_slice()) {
            Some(&s) => s,
            None => {
                let s = self.states.len();
                self.slots.insert(self.scratch.as_slice().into(), s);
                self.order.push(key.clone());
                self.states
                    .push(self.fields.iter().map(|(_, a)| AccState::new(a)).collect());
                s
            }
        }
    }

    /// One bucket's accumulator states, for direct batch accumulation.
    pub fn bucket_states(&mut self, slot: usize) -> &mut [AccState] {
        &mut self.states[slot]
    }

    /// Merges `other` — the kernel of the *later* morsel in document
    /// order — into `self`, bucket-wise by key bytes. A representative
    /// key `Value` re-encodes to exactly the byte key of its slot, so
    /// probing with `other`'s representatives finds `self`'s matching
    /// buckets; unseen keys append in `other`'s first-appearance order,
    /// reproducing the serial first-appearance order (and the serial
    /// first-seen `_id` representative) under in-order merging.
    pub fn merge(&mut self, other: Self) {
        for (key, states) in other.order.into_iter().zip(other.states) {
            keybytes::encode_into(&key, &mut self.scratch);
            match self.slots.get(self.scratch.as_slice()) {
                Some(&slot) => {
                    for (mine, theirs) in self.states[slot].iter_mut().zip(states) {
                        mine.merge(theirs);
                    }
                }
                None => {
                    let s = self.states.len();
                    self.slots.insert(self.scratch.as_slice().into(), s);
                    self.order.push(key);
                    self.states.push(states);
                }
            }
        }
    }

    /// Emits one output document per group, in first-appearance order.
    /// Empty input yields no documents (MongoDB's `$group` semantics,
    /// even with `_id: null`).
    pub fn finish(self) -> Vec<Document> {
        let mut out = Vec::with_capacity(self.order.len());
        for (key, states) in self.order.into_iter().zip(self.states) {
            let mut d = Document::with_capacity(self.fields.len() + 1);
            d.set("_id", key);
            for (state, (name, _)) in states.into_iter().zip(self.fields) {
                d.set(name.clone(), state.finish());
            }
            out.push(d);
        }
        out
    }
}

impl Accumulator {
    /// The accumulator's argument expression (for kernel compilation).
    pub(crate) fn expr(&self) -> &Expr {
        match self {
            Accumulator::Sum(e)
            | Accumulator::Avg(e)
            | Accumulator::Min(e)
            | Accumulator::Max(e)
            | Accumulator::First(e)
            | Accumulator::Last(e)
            | Accumulator::Push(e)
            | Accumulator::AddToSet(e) => e,
        }
    }
}

/// A `$sort` specification with pre-split key paths. Keys are extracted
/// once per document as borrowed [`Resolved`]s and compared under the
/// spec's directions — the decorate–sort–undecorate pattern both
/// executors and the shard-merge path share. Missing paths key as `Null`
/// (first ascending), matching MongoDB.
#[derive(Clone, Debug)]
pub struct CompiledSortSpec {
    keys: Vec<(CompiledPath, i32)>,
}

impl CompiledSortSpec {
    /// Compiles a `[(path, ±1), ..]` sort specification.
    pub fn new(spec: &[(String, i32)]) -> Self {
        Self { keys: spec.iter().map(|(p, dir)| (CompiledPath::new(p), *dir)).collect() }
    }

    /// The document's sort key, borrowing scalar components.
    #[allow(clippy::redundant_closure)] // closure, not fn item: see `CompiledExpr::eval_ref`
    pub fn key_refs<'a>(&self, doc: &'a Document) -> Vec<Resolved<'a>> {
        self.keys
            .iter()
            .map(|(p, _)| p.resolve(doc).unwrap_or_else(|| Resolved::null()))
            .collect()
    }

    /// Compares two keys produced by [`key_refs`](Self::key_refs).
    pub fn compare(&self, a: &[Resolved<'_>], b: &[Resolved<'_>]) -> Ordering {
        for ((va, vb), (_, dir)) in a.iter().zip(b).zip(&self.keys) {
            let mut ord = va.as_value().canonical_cmp(vb.as_value());
            if *dir < 0 {
                ord = ord.reverse();
            }
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Owned-key variant for consumers that must detach the key from the
    /// document (the router's k-way merge moves documents into a heap).
    /// One value clone per key component; still zero path splitting.
    pub fn key_owned(&self, doc: &Document) -> Vec<Value> {
        self.key_refs(doc).into_iter().map(Resolved::into_value).collect()
    }

    /// Compares two keys produced by [`key_owned`](Self::key_owned).
    pub fn compare_values(&self, a: &[Value], b: &[Value]) -> Ordering {
        for ((va, vb), (_, dir)) in a.iter().zip(b).zip(&self.keys) {
            let mut ord = va.canonical_cmp(vb);
            if *dir < 0 {
                ord = ord.reverse();
            }
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

/// Stable in-place sort of owned documents under a compiled spec: keys
/// are extracted once per document, an index permutation is sorted, and
/// the documents are permuted by `mem::take` — no per-comparison path
/// resolution, no document clones.
pub(crate) fn sort_documents_compiled(docs: &mut [Document], spec: &CompiledSortSpec) {
    let perm = {
        let keys: Vec<Vec<Resolved<'_>>> = docs.iter().map(|d| spec.key_refs(d)).collect();
        let mut perm: Vec<usize> = (0..docs.len()).collect();
        // Index tiebreak makes the unstable sort stable.
        perm.sort_unstable_by(|&a, &b| spec.compare(&keys[a], &keys[b]).then(a.cmp(&b)));
        perm
    };
    let mut taken: Vec<Document> = docs.iter_mut().map(std::mem::take).collect();
    for (dst, src) in perm.into_iter().enumerate() {
        docs[dst] = std::mem::take(&mut taken[src]);
    }
}

/// A `$project` specification compiled once per stage: inclusion mode
/// and `_id` handling are decided up front, included paths are
/// pre-split, and computed fields are pre-compiled. Write-side semantics
/// (`set_path` through the original path string) are unchanged.
pub(crate) struct CompiledProject<'p> {
    fields: &'p [(String, ProjectField)],
    compiled: Vec<CompiledProjectField>,
    inclusion: bool,
    id_excluded: bool,
}

enum CompiledProjectField {
    Include(CompiledPath),
    Exclude,
    Compute(CompiledExpr),
}

impl<'p> CompiledProject<'p> {
    pub fn new(fields: &'p [(String, ProjectField)]) -> Self {
        let inclusion = fields
            .iter()
            .any(|(k, f)| !matches!(f, ProjectField::Exclude) && k != "_id");
        let id_excluded = fields
            .iter()
            .any(|(k, f)| k == "_id" && matches!(f, ProjectField::Exclude));
        let compiled = fields
            .iter()
            .map(|(key, f)| match f {
                ProjectField::Exclude => CompiledProjectField::Exclude,
                ProjectField::Include => CompiledProjectField::Include(CompiledPath::new(key)),
                ProjectField::Compute(e) => CompiledProjectField::Compute(CompiledExpr::new(e)),
            })
            .collect();
        Self { fields, compiled, inclusion, id_excluded }
    }

    pub fn apply(&self, doc: &Document) -> Result<Document> {
        if self.inclusion {
            let mut out = Document::new();
            // _id is carried along unless explicitly excluded.
            if !self.id_excluded {
                if let Some(id) = doc.id() {
                    out.set("_id", id.clone());
                }
            }
            for ((key, _), field) in self.fields.iter().zip(&self.compiled) {
                match field {
                    CompiledProjectField::Exclude => {}
                    CompiledProjectField::Include(path) => {
                        if let Some(v) = path.resolve(doc) {
                            out.set_path(key, v.into_value());
                        }
                    }
                    CompiledProjectField::Compute(expr) => {
                        let v = expr.eval(doc)?;
                        out.set_path(key, v);
                    }
                }
            }
            Ok(out)
        } else {
            // Exclusion mode: copy everything except the listed paths.
            let mut out = doc.clone();
            for (key, _) in self.fields {
                super::exec::remove_path(&mut out, key);
            }
            Ok(out)
        }
    }
}

/// One document's `$unwind` expansion under a pre-compiled path
/// (MongoDB 3.0 semantics: arrays expand per element, missing / null /
/// empty-array drop the document, a scalar passes through unchanged).
pub(crate) fn unwind_parts_compiled(doc: &Document, path: &CompiledPath) -> Vec<Document> {
    match path.resolve(doc).as_ref().map(Resolved::as_value) {
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| {
                let mut clone = doc.clone();
                path.set(&mut clone, item.clone());
                clone
            })
            .collect(),
        Some(Value::Null) | None => Vec::new(),
        Some(_) => vec![doc.clone()],
    }
}

/// Shared `$lookup` execution: the hash table is built over documents
/// *borrowed* from the foreign collection (no whole-collection clone),
/// keyed by canonical key bytes; only matched rows are cloned into the
/// `as` array. A missing local field joins as `Null` (null ↔ missing in
/// lookup equality, matching MongoDB); an array-valued local field
/// matches any element.
pub(crate) fn lookup_stage(
    docs: Vec<Document>,
    source: &dyn LookupSource,
    from: &str,
    local_field: &str,
    foreign_field: &str,
    as_field: &str,
) -> Vec<Document> {
    if use_indexed_lookup(&docs, source, from, local_field, foreign_field) {
        return lookup_indexed(docs, source, from, local_field, foreign_field, as_field);
    }
    let local_path = CompiledPath::new(local_field);
    let foreign_path = CompiledPath::new(foreign_field);
    let mut input = Some(docs);
    let mut out = Vec::new();
    source.with_collection_docs(from, &mut |foreign| {
        let mut by_key: HashMap<Box<[u8]>, Vec<&Document>> = HashMap::new();
        let mut scratch = Vec::new();
        for f in foreign {
            let key = foreign_path.resolve(f);
            keybytes::encode_into(resolved_or_null(&key), &mut scratch);
            match by_key.get_mut(scratch.as_slice()) {
                Some(bucket) => bucket.push(f),
                None => {
                    by_key.insert(scratch.as_slice().into(), vec![f]);
                }
            }
        }
        let docs = input.take().expect("with_collection_docs invokes its callback once");
        out.reserve(docs.len());
        for mut d in docs {
            let matched: Vec<Value> = {
                let local = local_path.resolve(&d);
                match resolved_or_null(&local) {
                    Value::Array(items) => items
                        .iter()
                        .flat_map(|item| {
                            keybytes::encode_into(item, &mut scratch);
                            by_key.get(scratch.as_slice()).into_iter().flatten()
                        })
                        .map(|m| Value::Document((*m).clone()))
                        .collect(),
                    v => {
                        keybytes::encode_into(v, &mut scratch);
                        by_key
                            .get(scratch.as_slice())
                            .into_iter()
                            .flatten()
                            .map(|m| Value::Document((*m).clone()))
                            .collect()
                    }
                }
            };
            d.set(as_field, Value::Array(matched));
            out.push(d);
        }
    });
    out
}

fn resolved_or_null<'a>(r: &'a Option<Resolved<'a>>) -> &'a Value {
    static NULL: Value = Value::Null;
    r.as_ref().map_or(&NULL, Resolved::as_value)
}

/// Cost-based `$lookup` strategy choice: when the probe side is small
/// relative to an indexed foreign side, index-nested-loop probes beat
/// paying the full hash build over the foreign collection. The probe
/// keys must not contain array-valued elements — multikey index entries
/// fan arrays out per element, so an array *key* is unreachable through
/// the index while the hash build would match it whole. Shared with
/// `Collection::explain_aggregate` so the report matches execution.
pub(crate) fn use_indexed_lookup(
    docs: &[Document],
    source: &dyn LookupSource,
    from: &str,
    local_field: &str,
    foreign_field: &str,
) -> bool {
    crate::stats::planner_mode() == crate::stats::PlannerMode::Cost
        && source
            .collection_lookup_meta(from, foreign_field)
            .is_some_and(|meta| {
                meta.has_index
                    && docs.len().saturating_mul(16) < meta.docs
                    && inl_probe_keys_ok(docs, local_field)
            })
}

/// True if no probe key is itself an array (see [`lookup_stage`]):
/// scalar, document, and null/missing keys round-trip exactly through
/// the index, array keys do not.
fn inl_probe_keys_ok(docs: &[Document], local_field: &str) -> bool {
    let local_path = CompiledPath::new(local_field);
    docs.iter().all(|d| {
        let r = local_path.resolve(d);
        match resolved_or_null(&r) {
            Value::Array(items) => !items.iter().any(|i| matches!(i, Value::Array(_))),
            _ => true,
        }
    })
}

/// Index-nested-loop `$lookup`: per distinct probe key, fetch the
/// foreign matches through the index (slab order, exact re-check by the
/// source) and memoize them. Produces byte-identical results to the
/// hash build: same per-bucket document order, same duplicate handling,
/// same null ↔ missing semantics.
fn lookup_indexed(
    docs: Vec<Document>,
    source: &dyn LookupSource,
    from: &str,
    local_field: &str,
    foreign_field: &str,
    as_field: &str,
) -> Vec<Document> {
    let local_path = CompiledPath::new(local_field);
    let mut cache: HashMap<Box<[u8]>, Vec<Value>> = HashMap::new();
    let mut scratch = Vec::new();
    let mut probe = |key: &Value, cache: &mut HashMap<Box<[u8]>, Vec<Value>>| -> Vec<Value> {
        keybytes::encode_into(key, &mut scratch);
        if let Some(hit) = cache.get(scratch.as_slice()) {
            return hit.clone();
        }
        let matched: Vec<Value> = source
            .indexed_foreign_docs(from, foreign_field, key)
            .unwrap_or_default()
            .into_iter()
            .map(Value::Document)
            .collect();
        cache.insert(scratch.as_slice().into(), matched.clone());
        matched
    };
    let mut out = Vec::with_capacity(docs.len());
    for mut d in docs {
        let matched: Vec<Value> = {
            let local = local_path.resolve(&d);
            match resolved_or_null(&local) {
                Value::Array(items) => {
                    let mut m = Vec::new();
                    for item in items {
                        m.extend(probe(item, &mut cache));
                    }
                    m
                }
                v => probe(v, &mut cache),
            }
        };
        d.set(as_field, Value::Array(matched));
        out.push(d);
    }
    out
}
