//! The aggregation framework: "data processing pipelines" (thesis
//! Section 4.1.3.1) whose stages filter, reshape, group, and sort the
//! documents flowing through them.

pub mod accum;
pub mod exec;
pub mod expr;
pub mod kernel;
pub mod parallel;
pub mod stage;
pub mod stream;

pub use accum::Accumulator;
pub use exec::{execute, execute_with, sort_documents, LookupSource};
pub use expr::Expr;
pub use kernel::{CompiledExpr, CompiledSortSpec};
pub use exec::LookupMeta;
pub use parallel::{
    auto_morsel_size, execute_parallel, execute_parallel_with, parallel_morsel_size, run_parallel,
    set_parallel_morsel_size,
};
pub use stage::{GroupId, Pipeline, ProjectField, Stage};
pub use stream::{
    compare_sort_keys, default_exec_mode, execute_streaming, set_default_exec_mode, sort_keys,
    DocStream, ExecMode,
};
