//! Pipeline stage definitions and the [`Pipeline`] builder.

use super::accum::Accumulator;
use super::expr::Expr;
use crate::query::filter::Filter;

/// One field of a `$project` specification.
#[derive(Clone, Debug, PartialEq)]
pub enum ProjectField {
    /// `{path: 1}` — include the resolved value at this path.
    Include,
    /// `{path: 0}` — exclude (exclusion-mode projections, and `_id: 0`).
    Exclude,
    /// `{path: <expr>}` — computed field.
    Compute(Expr),
}

/// The `_id` of a `$group` stage.
#[derive(Clone, Debug, PartialEq)]
pub enum GroupId {
    /// `_id: null` — a single group over all input.
    Null,
    /// `_id: <expr>` — typically a field path or a document constructor.
    Expr(Expr),
}

/// A single aggregation pipeline stage. Table 4.2 of the thesis maps
/// these onto their SQL analogues (`$match` ↔ `WHERE`, `$group` ↔
/// `GROUP BY`, `$sort` ↔ `ORDER BY`, `$project` ↔ `SELECT`,
/// `$sum` ↔ `SUM/COUNT`, `$limit` ↔ `LIMIT`).
#[derive(Clone, Debug, PartialEq)]
pub enum Stage {
    /// `{$match: filter}`.
    Match(Filter),
    /// `{$project: {..}}`.
    Project(Vec<(String, ProjectField)>),
    /// `{$group: {_id: .., fields..}}`.
    Group {
        id: GroupId,
        fields: Vec<(String, Accumulator)>,
    },
    /// `{$sort: {path: ±1, ..}}`.
    Sort(Vec<(String, i32)>),
    /// `{$limit: n}`.
    Limit(usize),
    /// `{$skip: n}`.
    Skip(usize),
    /// `{$unwind: "$path"}`.
    Unwind(String),
    /// `{$lookup: {from, localField, foreignField, as}}` — left outer
    /// equality join: every input document gains an array field holding
    /// the matching documents of the `from` collection. (MongoDB 3.2's
    /// answer to the thesis's "MongoDB does not support joins"; provided
    /// here as the future-work extension of Section 5.2.)
    Lookup {
        from: String,
        local_field: String,
        foreign_field: String,
        as_field: String,
    },
    /// `{$count: "name"}`.
    Count(String),
    /// `{$out: "collection"}` — must be last; materializes results.
    Out(String),
}

/// An aggregation pipeline: an ordered list of stages with a fluent
/// builder mirroring the shell syntax used in Appendix B.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stages in order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Appends a raw stage.
    pub fn stage(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Appends `$match`.
    pub fn match_stage(self, filter: Filter) -> Self {
        self.stage(Stage::Match(filter))
    }

    /// Appends `$project`.
    pub fn project<I, S>(self, fields: I) -> Self
    where
        I: IntoIterator<Item = (S, ProjectField)>,
        S: Into<String>,
    {
        self.stage(Stage::Project(
            fields.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        ))
    }

    /// Appends `$group`.
    pub fn group<I, S>(self, id: GroupId, fields: I) -> Self
    where
        I: IntoIterator<Item = (S, Accumulator)>,
        S: Into<String>,
    {
        self.stage(Stage::Group {
            id,
            fields: fields.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        })
    }

    /// Appends `$sort` (`1` ascending, `-1` descending).
    pub fn sort<I, S>(self, spec: I) -> Self
    where
        I: IntoIterator<Item = (S, i32)>,
        S: Into<String>,
    {
        self.stage(Stage::Sort(
            spec.into_iter().map(|(k, o)| (k.into(), o)).collect(),
        ))
    }

    /// Appends `$limit`.
    pub fn limit(self, n: usize) -> Self {
        self.stage(Stage::Limit(n))
    }

    /// Appends `$skip`.
    pub fn skip(self, n: usize) -> Self {
        self.stage(Stage::Skip(n))
    }

    /// Appends `$unwind`.
    pub fn unwind(self, path: impl Into<String>) -> Self {
        self.stage(Stage::Unwind(path.into()))
    }

    /// Appends `$lookup`.
    pub fn lookup(
        self,
        from: impl Into<String>,
        local_field: impl Into<String>,
        foreign_field: impl Into<String>,
        as_field: impl Into<String>,
    ) -> Self {
        self.stage(Stage::Lookup {
            from: from.into(),
            local_field: local_field.into(),
            foreign_field: foreign_field.into(),
            as_field: as_field.into(),
        })
    }

    /// Appends `$count`.
    pub fn count(self, name: impl Into<String>) -> Self {
        self.stage(Stage::Count(name.into()))
    }

    /// Appends `$out`.
    pub fn out(self, collection: impl Into<String>) -> Self {
        self.stage(Stage::Out(collection.into()))
    }

    /// The `$out` target, if the pipeline ends with one.
    pub fn out_target(&self) -> Option<&str> {
        match self.stages.last() {
            Some(Stage::Out(name)) => Some(name),
            _ => None,
        }
    }

    /// The leading run of `$match` stages — the part a scatter-gather
    /// router pushes down to shards, and the part the executor can serve
    /// with an index.
    pub fn leading_matches(&self) -> Vec<&Filter> {
        self.stages
            .iter()
            .take_while(|s| matches!(s, Stage::Match(_)))
            .map(|s| match s {
                Stage::Match(f) => f,
                _ => unreachable!(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_in_order() {
        let p = Pipeline::new()
            .match_stage(Filter::eq("a", 1i64))
            .group(GroupId::Null, [("n", Accumulator::count())])
            .sort([("n", -1)])
            .limit(5)
            .out("result");
        assert_eq!(p.stages().len(), 5);
        assert_eq!(p.out_target(), Some("result"));
    }

    #[test]
    fn out_target_only_when_last() {
        let p = Pipeline::new().match_stage(Filter::True);
        assert_eq!(p.out_target(), None);
    }

    #[test]
    fn leading_matches_stop_at_first_other_stage() {
        let p = Pipeline::new()
            .match_stage(Filter::eq("a", 1i64))
            .match_stage(Filter::eq("b", 2i64))
            .limit(1)
            .match_stage(Filter::eq("c", 3i64));
        assert_eq!(p.leading_matches().len(), 2);
    }
}
