//! `$group` accumulators.
//!
//! Semantics follow MongoDB's: `$sum` and `$avg` skip non-numeric inputs
//! (so `{$sum: {$cond: [...]}}` patterns — Query 21 and Query 50's
//! bucketed day-range counts — behave exactly as in the thesis's scripts).

use super::expr::Expr;
use crate::error::Result;
use crate::ordvalue::OrdValue;
use doclite_bson::{Document, Resolved, Value};

/// An accumulator specification: the operator plus its argument
/// expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Accumulator {
    /// `{$sum: expr}`; `{$sum: 1}` is the idiomatic count.
    Sum(Expr),
    /// `{$avg: expr}`.
    Avg(Expr),
    /// `{$min: expr}`.
    Min(Expr),
    /// `{$max: expr}`.
    Max(Expr),
    /// `{$first: expr}` (document order).
    First(Expr),
    /// `{$last: expr}`.
    Last(Expr),
    /// `{$push: expr}`.
    Push(Expr),
    /// `{$addToSet: expr}`.
    AddToSet(Expr),
}

impl Accumulator {
    /// `{$sum: "$path"}`.
    pub fn sum_field(path: impl Into<String>) -> Self {
        Accumulator::Sum(Expr::field(path))
    }

    /// `{$avg: "$path"}`.
    pub fn avg_field(path: impl Into<String>) -> Self {
        Accumulator::Avg(Expr::field(path))
    }

    /// `{$sum: 1}` — row count.
    pub fn count() -> Self {
        Accumulator::Sum(Expr::lit(1i64))
    }
}

/// Running state for one accumulator in one group.
#[derive(Clone, Debug)]
pub enum AccState {
    Sum { total: f64, integral: bool, seen: bool },
    Avg { total: f64, count: usize },
    Min(Option<Value>),
    Max(Option<Value>),
    First(Option<Value>),
    Last(Option<Value>),
    Push(Vec<Value>),
    AddToSet(Vec<OrdValue>),
}

impl AccState {
    /// Fresh state for a spec.
    pub fn new(spec: &Accumulator) -> Self {
        match spec {
            Accumulator::Sum(_) => AccState::Sum { total: 0.0, integral: true, seen: false },
            Accumulator::Avg(_) => AccState::Avg { total: 0.0, count: 0 },
            Accumulator::Min(_) => AccState::Min(None),
            Accumulator::Max(_) => AccState::Max(None),
            Accumulator::First(_) => AccState::First(None),
            Accumulator::Last(_) => AccState::Last(None),
            Accumulator::Push(_) => AccState::Push(Vec::new()),
            Accumulator::AddToSet(_) => AccState::AddToSet(Vec::new()),
        }
    }

    /// Folds one document into the state.
    pub fn accumulate(&mut self, spec: &Accumulator, doc: &Document) -> Result<()> {
        let v = spec_expr(spec).eval(doc)?;
        self.accumulate_resolved(Resolved::Owned(v));
        Ok(())
    }

    /// Folds an already-evaluated input value into the state. Inspection
    /// (numeric extraction, extremum comparison, set membership) happens
    /// by reference; the value is taken by move only where the state
    /// actually retains it, so the kernel's borrowed inputs stay
    /// clone-free for `$sum`/`$avg`, rejected extrema, and set duplicates.
    pub(crate) fn accumulate_resolved(&mut self, v: Resolved<'_>) {
        match self {
            AccState::Sum { total, integral, seen } => {
                if let Some(n) = v.as_value().as_f64() {
                    *total += n;
                    *integral &= matches!(v.as_value(), Value::Int32(_) | Value::Int64(_));
                    *seen = true;
                }
            }
            AccState::Avg { total, count } => {
                if let Some(n) = v.as_value().as_f64() {
                    *total += n;
                    *count += 1;
                }
            }
            AccState::Min(cur) => {
                if !v.as_value().is_null()
                    && cur
                        .as_ref()
                        .is_none_or(|c| v.as_value().canonical_cmp(c) == std::cmp::Ordering::Less)
                {
                    *cur = Some(v.into_value());
                }
            }
            AccState::Max(cur) => {
                if !v.as_value().is_null()
                    && cur.as_ref().is_none_or(|c| {
                        v.as_value().canonical_cmp(c) == std::cmp::Ordering::Greater
                    })
                {
                    *cur = Some(v.into_value());
                }
            }
            AccState::First(cur) => {
                if cur.is_none() {
                    *cur = Some(v.into_value());
                }
            }
            AccState::Last(cur) => *cur = Some(v.into_value()),
            AccState::Push(items) => items.push(v.into_value()),
            AccState::AddToSet(set) => {
                if !set.iter().any(|ov| ov.0.canonical_eq(v.as_value())) {
                    set.push(OrdValue(v.into_value()));
                }
            }
        }
    }

    /// Merges `other` — the state of the *later* morsel in document
    /// order — into `self`. Every accumulator is associative over
    /// ordered partitions: order-insensitive ones (`$sum`, `$avg`,
    /// `$min`, `$max`, `$addToSet`'s membership) combine freely, and the
    /// order-sensitive ones (`$first`, `$last`, `$push`, `$addToSet`'s
    /// first-seen ordering) are correct exactly because morsels merge in
    /// document order. Only the float running sums (`$sum`/`$avg` over
    /// doubles) can differ from serial execution, by the usual ULP-level
    /// non-associativity of f64 addition.
    pub fn merge(&mut self, other: AccState) {
        match (self, other) {
            (
                AccState::Sum { total, integral, seen },
                AccState::Sum { total: t2, integral: i2, seen: s2 },
            ) => {
                *total += t2;
                *integral &= i2;
                *seen |= s2;
            }
            (AccState::Avg { total, count }, AccState::Avg { total: t2, count: c2 }) => {
                *total += t2;
                *count += c2;
            }
            (AccState::Min(cur), AccState::Min(v)) => {
                if let Some(v) = v {
                    if cur
                        .as_ref()
                        .is_none_or(|c| v.canonical_cmp(c) == std::cmp::Ordering::Less)
                    {
                        *cur = Some(v);
                    }
                }
            }
            (AccState::Max(cur), AccState::Max(v)) => {
                if let Some(v) = v {
                    if cur
                        .as_ref()
                        .is_none_or(|c| v.canonical_cmp(c) == std::cmp::Ordering::Greater)
                    {
                        *cur = Some(v);
                    }
                }
            }
            (AccState::First(cur), AccState::First(v)) => {
                if cur.is_none() {
                    *cur = v;
                }
            }
            (AccState::Last(cur), AccState::Last(v)) => {
                if v.is_some() {
                    *cur = v;
                }
            }
            (AccState::Push(items), AccState::Push(more)) => items.extend(more),
            (AccState::AddToSet(set), AccState::AddToSet(more)) => {
                for ov in more {
                    if !set.iter().any(|have| have.0.canonical_eq(&ov.0)) {
                        set.push(ov);
                    }
                }
            }
            _ => unreachable!("merging accumulator states of different kinds"),
        }
    }

    /// Final value for the group.
    pub fn finish(self) -> Value {
        match self {
            AccState::Sum { total, integral, seen } => {
                if !seen {
                    // MongoDB: $sum over no numeric inputs is 0.
                    Value::Int64(0)
                } else if integral && total.fract() == 0.0 && total.abs() < i64::MAX as f64 {
                    Value::Int64(total as i64)
                } else {
                    Value::Double(total)
                }
            }
            AccState::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Double(total / count as f64)
                }
            }
            AccState::Min(v) | AccState::Max(v) | AccState::First(v) | AccState::Last(v) => {
                v.unwrap_or(Value::Null)
            }
            AccState::Push(items) => Value::Array(items),
            AccState::AddToSet(set) => {
                Value::Array(set.into_iter().map(OrdValue::into_value).collect())
            }
        }
    }
}

pub(crate) fn spec_expr(spec: &Accumulator) -> &Expr {
    match spec {
        Accumulator::Sum(e)
        | Accumulator::Avg(e)
        | Accumulator::Min(e)
        | Accumulator::Max(e)
        | Accumulator::First(e)
        | Accumulator::Last(e)
        | Accumulator::Push(e)
        | Accumulator::AddToSet(e) => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    fn run(spec: Accumulator, docs: &[Document]) -> Value {
        let mut st = AccState::new(&spec);
        for d in docs {
            st.accumulate(&spec, d).unwrap();
        }
        st.finish()
    }

    #[test]
    fn sum_skips_non_numeric_and_counts_with_literal_one() {
        let docs = [doc! {"x" => 1i64}, doc! {"x" => "skip"}, doc! {"x" => 2i64}, doc! {}];
        assert_eq!(run(Accumulator::sum_field("x"), &docs), Value::Int64(3));
        assert_eq!(run(Accumulator::count(), &docs), Value::Int64(4));
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(run(Accumulator::sum_field("x"), &[]), Value::Int64(0));
    }

    #[test]
    fn sum_becomes_double_when_any_input_is() {
        let docs = [doc! {"x" => 1i64}, doc! {"x" => 0.5f64}];
        assert_eq!(run(Accumulator::sum_field("x"), &docs), Value::Double(1.5));
    }

    #[test]
    fn avg_ignores_missing_and_non_numeric() {
        let docs = [doc! {"x" => 2i64}, doc! {"y" => 1i64}, doc! {"x" => 4i64}];
        assert_eq!(run(Accumulator::avg_field("x"), &docs), Value::Double(3.0));
        assert_eq!(run(Accumulator::avg_field("z"), &docs), Value::Null);
    }

    #[test]
    fn min_max_skip_nulls() {
        let docs = [doc! {"x" => 5i64}, doc! {}, doc! {"x" => 2i64}, doc! {"x" => 9i64}];
        assert_eq!(run(Accumulator::Min(Expr::field("x")), &docs), Value::Int64(2));
        assert_eq!(run(Accumulator::Max(Expr::field("x")), &docs), Value::Int64(9));
    }

    #[test]
    fn first_last_respect_order() {
        let docs = [doc! {"x" => 1i64}, doc! {"x" => 2i64}, doc! {"x" => 3i64}];
        assert_eq!(run(Accumulator::First(Expr::field("x")), &docs), Value::Int64(1));
        assert_eq!(run(Accumulator::Last(Expr::field("x")), &docs), Value::Int64(3));
    }

    #[test]
    fn push_and_add_to_set() {
        let docs = [doc! {"x" => 1i64}, doc! {"x" => 1i64}, doc! {"x" => 2i64}];
        assert_eq!(
            run(Accumulator::Push(Expr::field("x")), &docs),
            Value::Array(vec![Value::Int64(1), Value::Int64(1), Value::Int64(2)])
        );
        assert_eq!(
            run(Accumulator::AddToSet(Expr::field("x")), &docs),
            Value::Array(vec![Value::Int64(1), Value::Int64(2)])
        );
    }

    #[test]
    fn conditional_sum_reproduces_case_when_bucketing() {
        // sum(case when diff <= 30 then 1 else 0 end) — Query 50's shape.
        let spec = Accumulator::Sum(Expr::cond(
            Expr::cmp(CmpOpLocal::Lte, Expr::field("diff"), Expr::lit(30i64)),
            Expr::lit(1i64),
            Expr::lit(0i64),
        ));
        let docs = [doc! {"diff" => 10i64}, doc! {"diff" => 40i64}, doc! {"diff" => 30i64}];
        assert_eq!(run(spec, &docs), Value::Int64(2));
    }

    use crate::query::filter::CmpOp as CmpOpLocal;

    #[test]
    fn merge_of_split_states_equals_serial_fold_at_every_split_point() {
        let docs = [
            doc! {"x" => 5i64},
            doc! {"x" => "skip"},
            doc! {},
            doc! {"x" => 2i64},
            doc! {"x" => 2i64},
            doc! {"x" => 9i64},
        ];
        let specs = [
            Accumulator::sum_field("x"),
            Accumulator::avg_field("x"),
            Accumulator::Min(Expr::field("x")),
            Accumulator::Max(Expr::field("x")),
            Accumulator::First(Expr::field("x")),
            Accumulator::Last(Expr::field("x")),
            Accumulator::Push(Expr::field("x")),
            Accumulator::AddToSet(Expr::field("x")),
            Accumulator::count(),
        ];
        for spec in &specs {
            let serial = run(spec.clone(), &docs);
            for split in 0..=docs.len() {
                let mut left = AccState::new(spec);
                for d in &docs[..split] {
                    left.accumulate(spec, d).unwrap();
                }
                let mut right = AccState::new(spec);
                for d in &docs[split..] {
                    right.accumulate(spec, d).unwrap();
                }
                left.merge(right);
                assert_eq!(left.finish(), serial, "{spec:?} split at {split}");
            }
        }
    }
}
