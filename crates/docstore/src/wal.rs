//! Write-ahead logging and crash recovery.
//!
//! A [`Wal`] is a per-database append-only log of committed write
//! operations. Every acknowledged write is framed, sequence-numbered and
//! CRC32-checksummed before the acknowledgement returns, so a process
//! kill loses at most the unacknowledged tail. [`DurableDb`] combines a
//! WAL with periodic checkpoints into the dump format: recovery restores
//! the newest valid checkpoint, replays the log up to the last intact
//! frame (tolerating a torn tail from a crash mid-append), and — when
//! the log ends in a clean-shutdown seal frame — verifies a post-replay
//! fingerprint of every collection.
//!
//! ## Frame layout
//!
//! The file opens with the 8-byte magic `DLWAL1\n\0`, followed by frames:
//!
//! ```text
//! ┌───────────┬───────────┬───────────┬────────────────┐
//! │ len: u32  │ seq: u64  │ crc: u32  │ body (len B)   │
//! │ LE        │ LE        │ LE        │ BSON document  │
//! └───────────┴───────────┴───────────┴────────────────┘
//! ```
//!
//! `crc` covers the sequence number and the body, so neither can be
//! corrupted undetected; `seq` must increase strictly, so a stale frame
//! overwritten by a shorter successor cannot resurface. The body is a
//! BSON document describing one logical operation ([`WalRecord`]).
//!
//! ## Sync policy and group commit
//!
//! Frames are written (flushed to the OS) on every append — a process
//! kill never loses an acknowledged write. [`SyncPolicy`] controls how
//! often `fsync` pushes them to the platter, which is what a *power*
//! loss is bounded by: `Always` syncs per commit, `EveryN(n)` amortizes
//! one sync over `n` commits, `Never` leaves it to the OS. A batch
//! append ([`Wal::append_batch`]) is one commit: its frames share a
//! single sync decision (group commit).

use crate::collection::Collection;
use crate::database::Database;
use crate::dump::{dump_collection, restore_collection};
use crate::error::{Error, Result};
use crate::index::{IndexDef, IndexKind, SortOrder};
use crate::query::filter::Filter;
use crate::storage::{crc32, fsync_dir, Crc32, StorageFaults};
use doclite_bson::codec::encoded_value_size;
use doclite_bson::{codec, doc, Document, Value, MAX_DOCUMENT_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const WAL_MAGIC: &[u8; 8] = b"DLWAL1\n\0";
const MANIFEST_MAGIC: &[u8; 8] = b"DLMANI1\n";
/// Frame header: len (4) + seq (8) + crc (4).
const FRAME_HEADER: usize = 16;
/// Sanity cap on a frame body: a document plus record framing.
const MAX_FRAME_BODY: usize = MAX_DOCUMENT_SIZE + 4096;

/// How often acknowledged frames are `fsync`ed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync every commit (safest, slowest).
    Always,
    /// Sync once per `n` commits (group commit amortization).
    EveryN(u64),
    /// Never sync explicitly; the OS flushes on its own schedule.
    Never,
}

/// WAL construction knobs.
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Fsync cadence.
    pub sync: SyncPolicy,
    /// Injectable disk faults (tests); `None` writes straight through.
    pub faults: Option<Arc<StorageFaults>>,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { sync: SyncPolicy::EveryN(64), faults: None }
    }
}

/// One logged operation. Updates are logged by *value* (the post-image
/// document), so replay is deterministic regardless of how the original
/// statement computed it — the same reasoning the replica layer applies
/// to upserts.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A document inserted into `coll`.
    Insert { coll: String, doc: Document },
    /// A document replaced (post-image, keyed by its `_id`); replay
    /// inserts it if the `_id` is absent, covering upserts.
    Update { coll: String, doc: Document },
    /// Documents deleted from `coll`, by `_id`.
    Delete { coll: String, ids: Vec<Value> },
    /// An index created on `coll`.
    CreateIndex { coll: String, def: IndexDef },
    /// An index dropped from `coll`.
    DropIndex { coll: String, name: String },
    /// The collection dropped.
    DropCollection { coll: String },
    /// Clean-shutdown marker carrying a database fingerprint; when this
    /// is the final frame, recovery verifies the replayed state against
    /// it.
    Seal { fingerprint: Document },
    /// A heartbeat: no state change, but it advances the sequence
    /// number and flows through change streams. Appended after each
    /// checkpoint truncation (and on idle view refreshes) so resume
    /// tokens stay observably live without real traffic.
    Noop,
}

fn index_def_to_doc(def: &IndexDef) -> Document {
    let fields: Vec<Value> = def
        .fields
        .iter()
        .map(|(f, ord)| {
            Value::Document(doc! {"f" => f.as_str(), "dir" => ord.as_i32() as i64})
        })
        .collect();
    doc! {
        "name" => def.name.as_str(),
        "fields" => Value::Array(fields),
        "kind" => match def.kind { IndexKind::BTree => "btree", IndexKind::Hashed => "hashed" },
        "unique" => def.unique,
    }
}

fn index_def_from_doc(d: &Document) -> Option<IndexDef> {
    let name = match d.get("name")? {
        Value::String(s) => s.clone(),
        _ => return None,
    };
    let Value::Array(raw) = d.get("fields")? else { return None };
    let mut fields = Vec::with_capacity(raw.len());
    for f in raw {
        let Value::Document(fd) = f else { return None };
        let Some(Value::String(path)) = fd.get("f") else { return None };
        let dir = match fd.get("dir") {
            Some(Value::Int64(-1)) => SortOrder::Descending,
            _ => SortOrder::Ascending,
        };
        fields.push((path.clone(), dir));
    }
    let kind = match d.get("kind") {
        Some(Value::String(s)) if s == "hashed" => IndexKind::Hashed,
        _ => IndexKind::BTree,
    };
    let unique = matches!(d.get("unique"), Some(Value::Bool(true)));
    Some(IndexDef { name, fields, kind, unique })
}

impl WalRecord {
    /// The collection this record targets; `None` for stream-control
    /// markers (`Seal`, `Noop`), which every change-stream scope sees.
    pub fn coll(&self) -> Option<&str> {
        match self {
            WalRecord::Insert { coll, .. }
            | WalRecord::Update { coll, .. }
            | WalRecord::Delete { coll, .. }
            | WalRecord::CreateIndex { coll, .. }
            | WalRecord::DropIndex { coll, .. }
            | WalRecord::DropCollection { coll } => Some(coll),
            WalRecord::Seal { .. } | WalRecord::Noop => None,
        }
    }

    /// Encodes the record as its BSON frame body.
    pub fn to_doc(&self) -> Document {
        match self {
            WalRecord::Insert { coll, doc } => {
                doc! {"op" => "insert", "c" => coll.as_str(), "d" => Value::Document(doc.clone())}
            }
            WalRecord::Update { coll, doc } => {
                doc! {"op" => "update", "c" => coll.as_str(), "d" => Value::Document(doc.clone())}
            }
            WalRecord::Delete { coll, ids } => {
                doc! {"op" => "delete", "c" => coll.as_str(), "ids" => Value::Array(ids.clone())}
            }
            WalRecord::CreateIndex { coll, def } => {
                doc! {"op" => "create_index", "c" => coll.as_str(),
                      "def" => Value::Document(index_def_to_doc(def))}
            }
            WalRecord::DropIndex { coll, name } => {
                doc! {"op" => "drop_index", "c" => coll.as_str(), "name" => name.as_str()}
            }
            WalRecord::DropCollection { coll } => {
                doc! {"op" => "drop_coll", "c" => coll.as_str()}
            }
            WalRecord::Seal { fingerprint } => {
                doc! {"op" => "seal", "fp" => Value::Document(fingerprint.clone())}
            }
            WalRecord::Noop => doc! {"op" => "noop"},
        }
    }

    /// Decodes a frame body; `None` on any malformed shape.
    pub fn from_doc(d: &Document) -> Option<WalRecord> {
        let op = match d.get("op")? {
            Value::String(s) => s.as_str(),
            _ => return None,
        };
        let coll = || match d.get("c") {
            Some(Value::String(s)) => Some(s.clone()),
            _ => None,
        };
        let body = || match d.get("d") {
            Some(Value::Document(doc)) => Some(doc.clone()),
            _ => None,
        };
        Some(match op {
            "insert" => WalRecord::Insert { coll: coll()?, doc: body()? },
            "update" => WalRecord::Update { coll: coll()?, doc: body()? },
            "delete" => match d.get("ids")? {
                Value::Array(ids) => WalRecord::Delete { coll: coll()?, ids: ids.clone() },
                _ => return None,
            },
            "create_index" => match d.get("def")? {
                Value::Document(def) => {
                    WalRecord::CreateIndex { coll: coll()?, def: index_def_from_doc(def)? }
                }
                _ => return None,
            },
            "drop_index" => match d.get("name")? {
                Value::String(name) => {
                    WalRecord::DropIndex { coll: coll()?, name: name.clone() }
                }
                _ => return None,
            },
            "drop_coll" => WalRecord::DropCollection { coll: coll()? },
            "seal" => match d.get("fp")? {
                Value::Document(fp) => WalRecord::Seal { fingerprint: fp.clone() },
                _ => return None,
            },
            "noop" => WalRecord::Noop,
            _ => return None,
        })
    }
}

struct WalInner {
    file: File,
    next_seq: u64,
    commits_since_sync: u64,
    /// Length of the valid frame region. The file can transiently be
    /// longer after a failed append (torn bytes) until the rewind
    /// truncates it back to this.
    len: u64,
    /// Set when a failed append could not be rewound (or an fsync
    /// failed): the tail state is then unknown, and appending past a
    /// torn region would leave frames a recovery scan can never reach,
    /// so further appends and seals are refused instead.
    poisoned: Option<String>,
    /// The file holds exactly the frames with seq in `(file_floor,
    /// next_seq)`: everything at or below the floor was truncated away
    /// by a checkpoint (or predates this incarnation of the log).
    file_floor: u64,
}

/// Default in-memory change-hub retention, in frames (see
/// [`Wal::set_change_capacity`]).
const DEFAULT_CHANGE_BUFFER: usize = 1024;

/// The write-ahead log: an append-only checksummed frame stream.
pub struct Wal {
    path: PathBuf,
    sync: SyncPolicy,
    faults: Option<Arc<StorageFaults>>,
    inner: Mutex<WalInner>,
    /// In-memory tail of recently committed frames, for change-stream
    /// cursors and log-shipping catch-up; survives log truncation.
    hub: crate::changes::ChangeHub,
}

impl Wal {
    /// Opens (or creates) a WAL for appending. An existing file is
    /// scanned first: appending resumes after the last valid frame, and
    /// a torn tail left by a crash is truncated away.
    pub fn open(path: impl Into<PathBuf>, opts: WalOptions) -> Result<Arc<Wal>> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let (valid_len, next_seq, file_floor) = if path.exists() {
            let scan = scan_wal(&path)?;
            let next = scan.frames.last().map_or(1, |f| f.seq + 1);
            let floor = scan.frames.first().map_or(next - 1, |f| f.seq - 1);
            (scan.valid_len, next, floor)
        } else {
            let mut f = File::create(&path)?;
            f.write_all(WAL_MAGIC)?;
            f.sync_data()?;
            (WAL_MAGIC.len() as u64, 1, 0)
        };
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Arc::new(Wal {
            path,
            sync: opts.sync,
            faults: opts.faults,
            inner: Mutex::new(WalInner {
                file,
                next_seq,
                commits_since_sync: 0,
                len: valid_len,
                poisoned: None,
                file_floor,
            }),
            hub: crate::changes::ChangeHub::new(DEFAULT_CHANGE_BUFFER),
        }))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Raises the next sequence number to at least `min_next`. Recovery
    /// calls this with the checkpoint watermark + 1: after a checkpoint
    /// truncated the log, a reopened (empty) WAL would otherwise restart
    /// at 1 and issue sequence numbers at or below the watermark, which
    /// the next replay skips as already-checkpointed.
    pub fn reserve_seq(&self, min_next: u64) {
        let mut inner = self.inner.lock();
        inner.next_seq = inner.next_seq.max(min_next);
        if inner.len == WAL_MAGIC.len() as u64 {
            // An empty log holds no frames at all, so nothing at or
            // below the new tip is replayable from it.
            inner.file_floor = inner.file_floor.max(inner.next_seq - 1);
        }
    }

    /// The sequence number of the most recently issued frame (0 when
    /// none have ever been issued). Doubles as the "current position"
    /// resume token for a change stream that wants only future events.
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }

    /// Appends a [`WalRecord::Noop`] heartbeat frame: no state change,
    /// but the sequence advances and change-stream cursors observe it.
    pub fn heartbeat(&self) -> Result<u64> {
        self.append(&WalRecord::Noop)
    }

    /// Resizes the in-memory change-hub retention window (frames kept
    /// for cursor catch-up after the file itself is truncated).
    pub fn set_change_capacity(&self, capacity: usize) {
        // Taking `inner` first keeps the lock order publish uses.
        let _inner = self.inner.lock();
        self.hub.set_capacity(capacity);
    }

    /// The change hub cursors subscribe to.
    pub(crate) fn change_hub(&self) -> &crate::changes::ChangeHub {
        &self.hub
    }

    /// Every committed frame with a sequence number above `token`, in
    /// order, or [`Error::TruncatedToken`] when a checkpoint truncated
    /// (and the in-memory hub evicted) part of that range. An empty vec
    /// means the caller is already at the tip. This is the catch-up
    /// surface shared by change-stream cursors and replica log
    /// shipping.
    pub fn frames_since(&self, token: u64) -> Result<Vec<Frame>> {
        let inner = self.inner.lock();
        let tip = inner.next_seq - 1;
        if token >= tip {
            return Ok(Vec::new());
        }
        // The hub's ring buffer holds the newest frames; prefer it (no
        // I/O). The file covers everything since the last truncation,
        // including what the ring already evicted.
        if let Some(frames) = self.hub.buffered_after(token) {
            return Ok(frames);
        }
        if token >= inner.file_floor {
            let scan = scan_wal(&self.path)?;
            return Ok(scan.frames.into_iter().filter(|f| f.seq > token).collect());
        }
        let oldest = self.hub.oldest_buffered().map_or(inner.file_floor, |s| {
            inner.file_floor.min(s.saturating_sub(1))
        });
        Err(Error::TruncatedToken { token, oldest })
    }

    /// Why the log refuses writes, if a prior failure poisoned it.
    pub fn poisoned(&self) -> Option<String> {
        self.inner.lock().poisoned.clone()
    }

    fn ensure_usable(inner: &WalInner) -> Result<()> {
        match &inner.poisoned {
            Some(r) => Err(Error::Storage(format!("WAL disabled: {r}"))),
            None => Ok(()),
        }
    }

    fn encode_frame(seq: u64, record: &WalRecord) -> Vec<u8> {
        let body = codec::encode_document(&record.to_doc());
        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&seq.to_le_bytes());
        crc.update(&body);
        frame.extend_from_slice(&crc.finish().to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    fn write_frame(&self, inner: &mut WalInner, record: &WalRecord) -> Result<u64> {
        let seq = inner.next_seq;
        let frame = Self::encode_frame(seq, record);
        let body_len = frame.len() - FRAME_HEADER;
        if body_len > MAX_FRAME_BODY {
            // A frame over the scan cap would be written fine but
            // rejected — along with everything after it — by the next
            // recovery scan as a torn tail. Refuse it up front.
            return Err(Error::Storage(format!(
                "WAL frame body of {body_len} bytes exceeds the {MAX_FRAME_BODY} byte cap"
            )));
        }
        match &self.faults {
            Some(f) => f.write_all(&mut inner.file, &frame)?,
            None => inner.file.write_all(&frame)?,
        }
        inner.len += frame.len() as u64;
        inner.next_seq += 1;
        Ok(seq)
    }

    /// Restores the file to its pre-append state after a failed frame
    /// write: a torn frame left at the tail would make every *later*
    /// append unreachable to the recovery scan. Poisons the log when the
    /// truncation itself fails.
    fn rewind(&self, inner: &mut WalInner, start_len: u64, start_seq: u64, cause: &Error) {
        inner.next_seq = start_seq;
        if self.faults.as_ref().is_some_and(|f| f.crashed()) {
            // A (simulated) crash means the process is dead: a real one
            // never cleans its own tail, so leave the torn bytes for the
            // recovery scan and refuse further appends instead.
            inner.poisoned = Some(format!("append failed after a storage crash ({cause})"));
            return;
        }
        let restored = inner
            .file
            .set_len(start_len)
            .and_then(|()| inner.file.seek(SeekFrom::Start(start_len)).map(|_| ()));
        match restored {
            Ok(()) => inner.len = start_len,
            Err(e) => {
                inner.poisoned = Some(format!(
                    "append failed ({cause}) and the rewind to offset {start_len} also \
                     failed ({e})"
                ));
            }
        }
    }

    fn commit(&self, inner: &mut WalInner) -> Result<()> {
        inner.commits_since_sync += 1;
        let due = match self.sync {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => inner.commits_since_sync >= n.max(1),
            SyncPolicy::Never => false,
        };
        if due {
            inner
                .file
                .sync_data()
                .map_err(|e| Error::Storage(format!("WAL fsync failed: {e}")))?;
            inner.commits_since_sync = 0;
        }
        Ok(())
    }

    /// Appends one record as one commit; returns its sequence number.
    /// On failure the log is rewound to its pre-append state (or
    /// poisoned if even that fails), so an error here means "nothing was
    /// logged", never "something half was".
    pub fn append(&self, record: &WalRecord) -> Result<u64> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Appends a batch of records as a *single* commit (group commit):
    /// all frames are written, then the sync policy is consulted once.
    /// Returns the sequence number of the last frame. Failure semantics
    /// as in [`Wal::append`]: the whole batch is rewound.
    pub fn append_batch(&self, records: &[WalRecord]) -> Result<u64> {
        let mut inner = self.inner.lock();
        Self::ensure_usable(&inner)?;
        let (start_len, start_seq) = (inner.len, inner.next_seq);
        let mut last = inner.next_seq;
        for r in records {
            match self.write_frame(&mut inner, r) {
                Ok(seq) => last = seq,
                Err(e) => {
                    self.rewind(&mut inner, start_len, start_seq, &e);
                    return Err(e);
                }
            }
        }
        if let Err(e) = self.commit(&mut inner) {
            // The frames reached the OS but their durability is unknown
            // (a failed fsync makes no promise about earlier commits
            // either); refusing further writes is the only honest state.
            inner.poisoned = Some(format!("commit fsync failed: {e}"));
            return Err(e);
        }
        // Publish only after the whole batch committed: a rewound batch
        // must never surface as change events. The `inner` lock is
        // still held, so subscribers observe frames in sequence order.
        self.hub.publish(
            records
                .iter()
                .enumerate()
                .map(|(i, r)| Frame { seq: start_seq + i as u64, record: r.clone() }),
        );
        Ok(last)
    }

    /// Forces an fsync regardless of policy.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        Self::ensure_usable(&inner)?;
        if let Err(e) = inner.file.sync_data() {
            inner.poisoned = Some(format!("explicit fsync failed: {e}"));
            return Err(e.into());
        }
        inner.commits_since_sync = 0;
        Ok(())
    }

    /// Truncates the log back to an empty header (after a checkpoint has
    /// absorbed its contents). Sequence numbering continues; it never
    /// restarts.
    pub fn truncate(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        Self::ensure_usable(&inner)?;
        inner.file.set_len(WAL_MAGIC.len() as u64)?;
        inner.len = WAL_MAGIC.len() as u64;
        inner.file.seek(SeekFrom::End(0))?;
        inner.file.sync_data()?;
        // Frames the file just dropped remain replayable only while the
        // change hub still buffers them.
        inner.file_floor = inner.next_seq - 1;
        Ok(())
    }

    #[cfg(test)]
    fn poison_for_test(&self, reason: &str) {
        self.inner.lock().poisoned = Some(reason.to_owned());
    }
}

/// Splits a list of deleted `_id`s into [`WalRecord::Delete`] frames
/// whose encoded bodies each stay within the scan cap — a delete of any
/// size then logs as several bounded frames (one group commit via
/// [`Wal::append_batch`]) instead of one oversized frame a recovery
/// scan would reject as a torn tail.
pub fn delete_records_chunked(coll: &str, ids: Vec<Value>) -> Vec<WalRecord> {
    // Per-element cost: type byte + array index key (≤ 20 digits) + NUL
    // + payload. Budgeting chunks to MAX_DOCUMENT_SIZE leaves the
    // frame's fixed fields comfortably inside MAX_FRAME_BODY's slack.
    let cost = |v: &Value| 1 + 20 + 1 + encoded_value_size(v);
    let mut records = Vec::new();
    let mut chunk: Vec<Value> = Vec::new();
    let mut chunk_size = 0usize;
    for id in ids {
        let c = cost(&id);
        if !chunk.is_empty() && chunk_size + c > MAX_DOCUMENT_SIZE {
            records.push(WalRecord::Delete { coll: coll.to_owned(), ids: std::mem::take(&mut chunk) });
            chunk_size = 0;
        }
        chunk_size += c;
        chunk.push(id);
    }
    if !chunk.is_empty() {
        records.push(WalRecord::Delete { coll: coll.to_owned(), ids: chunk });
    }
    records
}

/// One decoded frame.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The frame's sequence number.
    pub seq: u64,
    /// The decoded operation.
    pub record: WalRecord,
}

/// The result of scanning a log file.
#[derive(Debug)]
pub struct WalScan {
    /// Every intact frame, in order.
    pub frames: Vec<Frame>,
    /// Byte offset just past the last intact frame.
    pub valid_len: u64,
    /// Whether bytes beyond `valid_len` were present and discarded — a
    /// torn tail from a crash mid-append (or tail corruption).
    pub torn_tail: bool,
}

/// Scans a WAL file up to the last intact frame. A frame is intact when
/// its length is sane, its checksum matches, its body decodes, and its
/// sequence number strictly increases; everything after the first
/// violation is treated as a torn tail and ignored. A missing or
/// malformed *header* is corruption, not a torn tail, and errors out.
pub fn scan_wal(path: &Path) -> Result<WalScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(Error::Storage(format!("{}: not a doclite WAL", path.display())));
    }
    let mut frames = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut last_seq = 0u64;
    while let Some(header) = bytes.get(pos..pos + FRAME_HEADER) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let seq = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        if len > MAX_FRAME_BODY || seq <= last_seq {
            break;
        }
        let Some(body) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len) else { break };
        let mut hasher = Crc32::new();
        hasher.update(&seq.to_le_bytes());
        hasher.update(body);
        if hasher.finish() != crc {
            break;
        }
        let Ok(doc) = codec::decode_document(body) else { break };
        let Some(record) = WalRecord::from_doc(&doc) else { break };
        frames.push(Frame { seq, record });
        last_seq = seq;
        pos += FRAME_HEADER + len;
    }
    Ok(WalScan {
        frames,
        valid_len: pos as u64,
        torn_tail: pos < bytes.len(),
    })
}

/// Applies one logged record to a database. Recovery replay calls this
/// on a database that does *not* have a WAL attached yet (replay must
/// not re-log itself); replica log shipping calls it on a live member,
/// where re-logging into the member's own WAL is exactly the point.
pub fn apply_record(db: &Database, record: &WalRecord) -> Result<()> {
    match record {
        WalRecord::Insert { coll, doc } => {
            db.collection(coll).insert_one(doc.clone())?;
        }
        WalRecord::Update { coll, doc } => {
            let c = db.collection(coll);
            if let Some(id) = doc.id() {
                c.delete_many(&Filter::eq("_id", id.clone()));
            }
            c.insert_one(doc.clone())?;
        }
        WalRecord::Delete { coll, ids } => {
            let c = db.collection(coll);
            for id in ids {
                c.delete_many(&Filter::eq("_id", id.clone()));
            }
        }
        WalRecord::CreateIndex { coll, def } => {
            db.collection(coll).create_index(def.clone())?;
        }
        WalRecord::DropIndex { coll, name } => {
            db.collection(coll).drop_index(name)?;
        }
        WalRecord::DropCollection { coll } => {
            db.drop_collection(coll);
        }
        WalRecord::Seal { .. } | WalRecord::Noop => {}
    }
    Ok(())
}

/// An order-insensitive fingerprint of a database: per collection (in
/// name order, empty ones skipped), the live document count and a CRC32
/// over the sorted encoded documents. Bit-identical content ⇒ identical
/// fingerprint, regardless of physical insertion order.
pub fn db_fingerprint(db: &Database) -> Document {
    let mut entries = Vec::new();
    for name in db.collection_names() {
        let Ok(coll) = db.get_collection(&name) else { continue };
        let (n, crc) = collection_fingerprint(&coll);
        if n == 0 {
            continue;
        }
        entries.push(Value::Document(
            doc! {"c" => name.as_str(), "n" => n as i64, "crc" => crc as i64},
        ));
    }
    doc! {"collections" => Value::Array(entries)}
}

/// A collection's `(count, crc)` fingerprint component.
pub fn collection_fingerprint(coll: &Collection) -> (u64, u32) {
    let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(coll.len());
    coll.for_each(|d| encoded.push(codec::encode_document(d)));
    encoded.sort();
    let mut hasher = Crc32::new();
    for e in &encoded {
        hasher.update(e);
    }
    (encoded.len() as u64, hasher.finish())
}

/// What recovery found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Collections restored from the checkpoint.
    pub checkpoint_collections: usize,
    /// Documents restored from the checkpoint.
    pub checkpoint_docs: u64,
    /// WAL frames replayed on top of the checkpoint.
    pub frames_replayed: u64,
    /// WAL frames skipped because their sequence number was at or below
    /// the checkpoint's watermark (the checkpoint already contains their
    /// effects — the crash-between-swap-and-truncate window).
    pub frames_skipped: u64,
    /// Sequence number of the last replayed frame (0 = none).
    pub last_seq: u64,
    /// Whether a torn tail was discarded.
    pub torn_tail: bool,
    /// Whether the log ended in a verified clean-shutdown seal.
    pub sealed: bool,
}

/// A database with crash-safe durability: every acknowledged write goes
/// through the WAL, and [`DurableDb::checkpoint`] compacts the log into
/// the dump format. Reopening the same directory recovers the state as
/// of the last acknowledged write.
///
/// Checkpoints assume no concurrent writers for the duration of the
/// call (the dump and the log truncation are not atomic with respect to
/// interleaved writes); callers that checkpoint a live system must
/// quiesce writes first.
pub struct DurableDb {
    db: Arc<Database>,
    wal: Arc<Wal>,
    dir: PathBuf,
    opts: WalOptions,
}

impl DurableDb {
    /// Opens a durable database rooted at `dir`, recovering whatever a
    /// previous incarnation persisted: newest valid checkpoint first,
    /// then WAL replay to the last intact frame. A fresh directory
    /// yields an empty database.
    pub fn open(
        name: impl Into<String>,
        dir: impl Into<PathBuf>,
        opts: WalOptions,
    ) -> Result<(DurableDb, RecoveryReport)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let db = Arc::new(Database::new(name));
        let mut report = RecoveryReport::default();

        // 1. Restore the newest complete checkpoint. A crash between
        //    the swap's remove and rename can leave only the `.tmp`
        //    sibling; a complete one (valid manifest) is just as good.
        let manifest = [dir.join("checkpoint"), dir.join("checkpoint.tmp")]
            .into_iter()
            .find_map(|d| read_manifest(&d.join("MANIFEST")).map(|m| (d, m)));
        let mut watermark = 0u64;
        if let Some((ckpt_dir, manifest)) = manifest {
            // The manifest records the WAL high-water sequence the
            // checkpoint absorbed; a crash between the swap and the log
            // truncation leaves those frames in the log, and replaying
            // them over the checkpoint would double-apply (inserts hit
            // the unique _id index and the store could never reopen).
            if let Some(Value::Int64(s)) = manifest.get("wal_seq") {
                watermark = *s as u64;
            }
            restore_checkpoint(&db, &ckpt_dir, &manifest, &mut report)?;
        }

        // 2. Replay the log, skipping frames the checkpoint already
        //    contains. `Wal::open` re-scans and truncates the torn
        //    tail; scanning here first yields the frames to apply.
        let wal_path = dir.join("wal.log");
        let mut sealed_fp = None;
        if wal_path.exists() {
            let scan = scan_wal(&wal_path)?;
            report.torn_tail = scan.torn_tail;
            for frame in &scan.frames {
                if frame.seq <= watermark {
                    report.frames_skipped += 1;
                    continue;
                }
                apply_record(&db, &frame.record)?;
                report.frames_replayed += 1;
                report.last_seq = frame.seq;
            }
            if let Some(Frame { record: WalRecord::Seal { fingerprint }, .. }) =
                scan.frames.last()
            {
                sealed_fp = Some(fingerprint.clone());
            }
        }

        // 3. A clean shutdown sealed the log with a fingerprint; the
        //    replayed state must reproduce it bit-for-bit.
        if let Some(expected) = sealed_fp {
            let actual = db_fingerprint(&db);
            if actual != expected {
                return Err(Error::Storage(format!(
                    "{}: post-replay fingerprint mismatch (expected {expected:?}, got \
                     {actual:?})",
                    dir.display()
                )));
            }
            report.sealed = true;
        }

        let wal = Wal::open(&wal_path, opts.clone())?;
        // An empty (checkpoint-truncated) log would restart numbering at
        // 1; keep it past the watermark so new frames are never skipped.
        wal.reserve_seq(watermark + 1);
        db.attach_wal(Arc::clone(&wal));
        Ok((DurableDb { db, wal, dir, opts }, report))
    }

    /// The recovered database handle (writes to it are WAL-logged).
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The underlying log.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// The durability root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Compacts the WAL into a checkpoint: dumps every collection (with
    /// index definitions and fingerprints in a checksummed manifest)
    /// into `checkpoint.tmp`, atomically swaps it in as `checkpoint`,
    /// then truncates the log. Requires a write-quiesced database.
    pub fn checkpoint(&self) -> Result<()> {
        let tmp = self.dir.join("checkpoint.tmp");
        let fin = self.dir.join("checkpoint");
        if tmp.exists() {
            std::fs::remove_dir_all(&tmp)?;
        }
        std::fs::create_dir_all(&tmp)?;
        // Everything logged so far (the database is quiesced) is about
        // to be absorbed by this checkpoint; recording the high-water
        // sequence lets recovery skip these frames if we die after the
        // swap below but before the log truncation.
        let watermark = self.wal.next_seq().saturating_sub(1);

        let mut entries = Vec::new();
        for name in self.db.collection_names() {
            let Ok(coll) = self.db.get_collection(&name) else { continue };
            let n = dump_collection(&coll, &tmp.join(format!("{name}.dump")))?;
            let (_, crc) = collection_fingerprint(&coll);
            let indexes: Vec<Value> = coll
                .index_defs()
                .into_iter()
                .filter(|d| d.name != "_id_")
                .map(|d| Value::Document(index_def_to_doc(&d)))
                .collect();
            entries.push(Value::Document(doc! {
                "c" => name.as_str(),
                "n" => n as i64,
                "crc" => crc as i64,
                "indexes" => Value::Array(indexes),
                // Planner statistics ride along so a recovered database
                // plans as well as the one that checkpointed; readers of
                // older manifests miss the key and rebuild lazily.
                "stats" => Value::Document(coll.stats_doc()),
            }));
        }
        write_manifest(
            &tmp.join("MANIFEST"),
            &doc! {
                "collections" => Value::Array(entries),
                "wal_seq" => watermark as i64,
            },
        )?;
        // The manifest's directory entry must be durable before the
        // directory is swapped into place.
        fsync_dir(&tmp)?;

        if fin.exists() {
            std::fs::remove_dir_all(&fin)?;
        }
        std::fs::rename(&tmp, &fin)?;
        // Persist the rename before dropping the log: otherwise a power
        // loss could keep the truncation but lose the swap, leaving the
        // old (or no) checkpoint plus an empty log.
        fsync_dir(&self.dir)?;
        self.wal.truncate()?;
        // Heartbeat so change-stream cursors see a frame past the
        // truncation point instead of an indistinguishable silence.
        self.wal.heartbeat()?;
        Ok(())
    }

    /// Clean shutdown: appends a fingerprint-carrying seal frame and
    /// syncs, so the next recovery can verify the replayed state.
    pub fn seal(&self) -> Result<()> {
        self.wal
            .append(&WalRecord::Seal { fingerprint: db_fingerprint(&self.db) })?;
        self.wal.sync()
    }

    /// Recovery knob passthrough (reopen with the same options).
    pub fn options(&self) -> &WalOptions {
        &self.opts
    }
}

/// Manifest file: magic, u32 length, BSON body, CRC32 trailer.
fn write_manifest(path: &Path, manifest: &Document) -> Result<()> {
    let body = codec::encode_document(manifest);
    let mut f = File::create(path)?;
    f.write_all(MANIFEST_MAGIC)?;
    f.write_all(&(body.len() as u32).to_le_bytes())?;
    f.write_all(&body)?;
    f.write_all(&crc32(&body).to_le_bytes())?;
    f.sync_data()?;
    Ok(())
}

/// Reads and validates a manifest; `None` when missing or corrupt (the
/// checkpoint directory is then ignored, never half-trusted).
fn read_manifest(path: &Path) -> Option<Document> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    let rest = bytes.strip_prefix(MANIFEST_MAGIC.as_slice())?;
    let len = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
    let body = rest.get(4..4 + len)?;
    let crc = u32::from_le_bytes(rest.get(4 + len..4 + len + 4)?.try_into().ok()?);
    if crc32(body) != crc {
        return None;
    }
    codec::decode_document(body).ok()
}

fn restore_checkpoint(
    db: &Database,
    ckpt_dir: &Path,
    manifest: &Document,
    report: &mut RecoveryReport,
) -> Result<()> {
    let Some(Value::Array(entries)) = manifest.get("collections") else {
        return Err(Error::Storage("manifest missing collection list".into()));
    };
    for entry in entries {
        let Value::Document(e) = entry else {
            return Err(Error::Storage("malformed manifest entry".into()));
        };
        let Some(Value::String(name)) = e.get("c") else {
            return Err(Error::Storage("manifest entry missing name".into()));
        };
        let coll = db.collection(name);
        if let Some(Value::Array(indexes)) = e.get("indexes") {
            for idx in indexes {
                if let Value::Document(d) = idx {
                    let def = index_def_from_doc(d).ok_or_else(|| {
                        Error::Storage(format!("{name}: malformed index in manifest"))
                    })?;
                    coll.create_index(def)?;
                }
            }
        }
        let n = restore_collection(&coll, &ckpt_dir.join(format!("{name}.dump")))?;
        if let Some(Value::Document(stats)) = e.get("stats") {
            coll.load_stats_doc(stats);
        }
        let (count, crc) = collection_fingerprint(&coll);
        let want_n = matches!(e.get("n"), Some(Value::Int64(v)) if *v == count as i64);
        let want_crc = matches!(e.get("crc"), Some(Value::Int64(v)) if *v == crc as i64);
        if !want_n || !want_crc {
            return Err(Error::Storage(format!(
                "checkpoint collection {name} failed verification (restored {n} docs)"
            )));
        }
        report.checkpoint_collections += 1;
        report.checkpoint_docs += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateSpec;
    use doclite_bson::doc;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("doclite-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts_always() -> WalOptions {
        WalOptions { sync: SyncPolicy::Always, faults: None }
    }

    #[test]
    fn wal_record_roundtrip() {
        let records = vec![
            WalRecord::Insert { coll: "a".into(), doc: doc! {"_id" => 1i64, "v" => "x"} },
            WalRecord::Update { coll: "a".into(), doc: doc! {"_id" => 1i64, "v" => "y"} },
            WalRecord::Delete { coll: "a".into(), ids: vec![Value::Int64(1)] },
            WalRecord::CreateIndex { coll: "a".into(), def: IndexDef::single("v") },
            WalRecord::DropIndex { coll: "a".into(), name: "v_1".into() },
            WalRecord::DropCollection { coll: "a".into() },
            WalRecord::Seal { fingerprint: doc! {"collections" => Value::Array(vec![])} },
        ];
        for r in records {
            assert_eq!(WalRecord::from_doc(&r.to_doc()), Some(r));
        }
    }

    #[test]
    fn append_scan_roundtrip_with_increasing_seqs() {
        let dir = tmp("scan");
        let wal = Wal::open(dir.join("wal.log"), opts_always()).unwrap();
        for i in 0..10i64 {
            wal.append(&WalRecord::Insert { coll: "c".into(), doc: doc! {"_id" => i} })
                .unwrap();
        }
        let scan = scan_wal(&dir.join("wal.log")).unwrap();
        assert_eq!(scan.frames.len(), 10);
        assert!(!scan.torn_tail);
        let seqs: Vec<u64> = scan.frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_resumes_sequence_numbers() {
        let dir = tmp("resume");
        let path = dir.join("wal.log");
        {
            let wal = Wal::open(&path, opts_always()).unwrap();
            wal.append(&WalRecord::DropCollection { coll: "x".into() }).unwrap();
            wal.append(&WalRecord::DropCollection { coll: "y".into() }).unwrap();
        }
        let wal = Wal::open(&path, opts_always()).unwrap();
        assert_eq!(wal.next_seq(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_db_recovers_all_write_kinds() {
        let dir = tmp("kinds");
        {
            let (d, _) = DurableDb::open("db", &dir, opts_always()).unwrap();
            let c = d.db().collection("c");
            c.insert_many((0..20i64).map(|i| doc! {"_id" => i, "v" => i})).unwrap();
            c.create_index(IndexDef::single("v")).unwrap();
            c.update(&Filter::eq("_id", 3i64), &UpdateSpec::set("v", 999i64), false, true)
                .unwrap();
            c.delete_many(&Filter::eq("_id", 7i64));
            d.db().collection("gone").insert_one(doc! {"z" => 1i64}).unwrap();
            d.db().drop_collection("gone");
            // No seal: simulate a process kill here.
        }
        let (d, report) = DurableDb::open("db", &dir, opts_always()).unwrap();
        assert!(report.frames_replayed > 0);
        assert!(!report.torn_tail);
        let c = d.db().get_collection("c").unwrap();
        assert_eq!(c.len(), 19);
        assert_eq!(
            c.find_one(&Filter::eq("_id", 3i64)).unwrap().get("v"),
            Some(&Value::Int64(999))
        );
        assert!(c.find_one(&Filter::eq("_id", 7i64)).is_none());
        assert!(c.index_defs().iter().any(|x| x.name == "v_1"));
        assert!(!d.db().has_collection("gone"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_recovery_prefers_it() {
        let dir = tmp("ckpt");
        {
            let (d, _) = DurableDb::open("db", &dir, opts_always()).unwrap();
            let c = d.db().collection("c");
            c.create_index(IndexDef::single("v")).unwrap();
            c.insert_many((0..50i64).map(|i| doc! {"_id" => i, "v" => i % 5})).unwrap();
            d.checkpoint().unwrap();
            // Post-checkpoint writes live only in the (truncated) log.
            c.insert_one(doc! {"_id" => 100i64, "v" => 0i64}).unwrap();
        }
        let (d, report) = DurableDb::open("db", &dir, opts_always()).unwrap();
        assert_eq!(report.checkpoint_docs, 50);
        // The post-checkpoint heartbeat Noop plus the real insert.
        assert_eq!(report.frames_replayed, 2);
        let c = d.db().get_collection("c").unwrap();
        assert_eq!(c.len(), 51);
        assert!(c.index_defs().iter().any(|x| x.name == "v_1"), "index survived checkpoint");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_verifies_fingerprint_and_tamper_is_caught() {
        let dir = tmp("seal");
        {
            let (d, _) = DurableDb::open("db", &dir, opts_always()).unwrap();
            d.db().collection("c").insert_one(doc! {"_id" => 1i64}).unwrap();
            d.seal().unwrap();
        }
        let (_, report) = DurableDb::open("db", &dir, opts_always()).unwrap();
        assert!(report.sealed);

        // Flip one byte inside the first frame's body: the CRC rejects
        // the frame, the replayed state no longer matches the seal...
        // except the seal frame itself is now unreachable (it follows
        // the corrupt frame), so recovery simply stops earlier. Corrupt
        // the *checkpointless* store a different way: rewrite the first
        // insert's body bytes with a matching CRC is impossible without
        // the key material, so assert the torn-tail path instead.
        let path = dir.join("wal.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = WAL_MAGIC.len() + FRAME_HEADER + 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (d, report) = DurableDb::open("db", &dir, opts_always()).unwrap();
        assert!(report.torn_tail, "bit flip truncates the log at the corrupt frame");
        assert!(!report.sealed);
        assert_eq!(d.db().collection_names().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_crash_window_is_closed_by_the_watermark() {
        let dir = tmp("ckpt-window");
        {
            let (d, _) = DurableDb::open("db", &dir, opts_always()).unwrap();
            let c = d.db().collection("c");
            c.insert_many((0..25i64).map(|i| doc! {"_id" => i})).unwrap();
            // Simulate dying after the checkpoint swap but before the
            // log truncation: snapshot the log, checkpoint, put the full
            // log back. Recovery then sees a checkpoint that already
            // contains every frame in the log.
            let log = std::fs::read(dir.join("wal.log")).unwrap();
            d.checkpoint().unwrap();
            std::fs::write(dir.join("wal.log"), &log).unwrap();
        }
        let (d, report) = DurableDb::open("db", &dir, opts_always()).unwrap();
        assert_eq!(report.checkpoint_docs, 25);
        assert_eq!(report.frames_skipped, 25, "checkpointed frames skipped, not re-applied");
        assert_eq!(report.frames_replayed, 0);
        assert_eq!(d.db().get_collection("c").unwrap().len(), 25);
        // Fresh writes must land *above* the watermark, else the next
        // recovery would skip them as already checkpointed.
        d.db().get_collection("c").unwrap().insert_one(doc! {"_id" => 100i64}).unwrap();
        drop(d);
        let (d, report) = DurableDb::open("db", &dir, opts_always()).unwrap();
        assert_eq!(report.frames_replayed, 1);
        assert_eq!(d.db().get_collection("c").unwrap().len(), 26);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_log_resumes_numbering_above_the_watermark() {
        let dir = tmp("reserve");
        {
            let (d, _) = DurableDb::open("db", &dir, opts_always()).unwrap();
            d.db().collection("c").insert_many((0..5i64).map(|i| doc! {"_id" => i})).unwrap();
            d.checkpoint().unwrap();
        }
        // Post-checkpoint the log holds only the heartbeat Noop (seq 6);
        // a reopened WAL must keep numbering above it.
        let (d, _) = DurableDb::open("db", &dir, opts_always()).unwrap();
        assert_eq!(d.wal().next_seq(), 7);
        d.db().get_collection("c").unwrap().insert_one(doc! {"_id" => 10i64}).unwrap();
        drop(d);
        let (d, report) = DurableDb::open("db", &dir, opts_always()).unwrap();
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(d.db().get_collection("c").unwrap().len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_frame_is_refused_and_the_log_stays_usable() {
        let dir = tmp("oversize");
        let wal = Wal::open(dir.join("wal.log"), opts_always()).unwrap();
        wal.append(&WalRecord::DropCollection { coll: "a".into() }).unwrap();
        let huge: Vec<Value> =
            (0..18).map(|_| Value::String("x".repeat(1024 * 1024))).collect();
        assert!(wal.append(&WalRecord::Delete { coll: "c".into(), ids: huge }).is_err());
        assert!(wal.poisoned().is_none(), "refused up front, not a poison event");
        wal.append(&WalRecord::DropCollection { coll: "b".into() }).unwrap();
        let scan = scan_wal(&dir.join("wal.log")).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.frames.iter().map(|f| f.seq).collect::<Vec<_>>(), vec![1, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunked_delete_frames_stay_under_the_scan_cap_in_order() {
        // 40 one-megabyte string ids: one Delete frame would be ~40 MB,
        // far over the cap; chunking must split without reordering.
        let ids: Vec<Value> = (0..40)
            .map(|i| Value::String(format!("{i:04}-{}", "x".repeat(1024 * 1024))))
            .collect();
        let records = delete_records_chunked("c", ids.clone());
        assert!(records.len() > 1, "a ~40 MB delete must split");
        let mut flattened = Vec::new();
        for r in &records {
            let body = codec::encode_document(&r.to_doc());
            assert!(body.len() <= MAX_FRAME_BODY, "chunk body {} over the cap", body.len());
            let WalRecord::Delete { coll, ids } = r else { panic!("non-delete record") };
            assert_eq!(coll, "c");
            flattened.extend(ids.iter().cloned());
        }
        assert_eq!(flattened, ids);
        assert!(delete_records_chunked("c", Vec::new()).is_empty());
    }

    #[test]
    fn failed_append_rewinds_and_the_retry_reuses_the_sequence() {
        let dir = tmp("rewind");
        let faults = StorageFaults::new();
        let wal = Wal::open(
            dir.join("wal.log"),
            WalOptions { sync: SyncPolicy::Always, faults: Some(Arc::clone(&faults)) },
        )
        .unwrap();
        wal.append(&WalRecord::DropCollection { coll: "a".into() }).unwrap();
        faults.transient_eio(1);
        assert!(wal.append(&WalRecord::DropCollection { coll: "b".into() }).is_err());
        assert!(wal.poisoned().is_none(), "a clean rewind keeps the log usable");
        // The retry lands exactly where the failed frame would have —
        // same offset, same sequence number, no gap for a scan to trip
        // on.
        wal.append(&WalRecord::DropCollection { coll: "b".into() }).unwrap();
        let scan = scan_wal(&dir.join("wal.log")).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.frames.iter().map(|f| f.seq).collect::<Vec<_>>(), vec![1, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_append_poisons_and_leaves_the_tail_for_recovery() {
        let dir = tmp("crash-poison");
        let faults = StorageFaults::new();
        let wal = Wal::open(
            dir.join("wal.log"),
            WalOptions { sync: SyncPolicy::Always, faults: Some(Arc::clone(&faults)) },
        )
        .unwrap();
        wal.append(&WalRecord::DropCollection { coll: "a".into() }).unwrap();
        // Die 10 bytes into the next frame: a torn prefix hits the file
        // and stays there — a dead process cannot rewind itself.
        faults.crash_after_bytes(10);
        assert!(wal.append(&WalRecord::DropCollection { coll: "b".into() }).is_err());
        assert!(wal.poisoned().is_some(), "post-crash the log refuses writes");
        assert!(wal.append(&WalRecord::DropCollection { coll: "c".into() }).is_err());
        let scan = scan_wal(&dir.join("wal.log")).unwrap();
        assert!(scan.torn_tail, "the torn prefix is left for the recovery scan");
        assert_eq!(scan.frames.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_wal_refuses_appends_and_syncs() {
        let dir = tmp("poison");
        let wal = Wal::open(dir.join("wal.log"), opts_always()).unwrap();
        wal.poison_for_test("injected");
        let err = wal.append(&WalRecord::DropCollection { coll: "a".into() }).unwrap_err();
        assert!(err.to_string().contains("WAL disabled"), "unexpected error: {err}");
        assert!(wal.sync().is_err());
        assert!(wal.truncate().is_err());
        assert_eq!(wal.poisoned().as_deref(), Some("injected"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_syncs_once_per_batch() {
        let dir = tmp("batch");
        let wal = Wal::open(
            dir.join("wal.log"),
            WalOptions { sync: SyncPolicy::EveryN(1000), faults: None },
        )
        .unwrap();
        let records: Vec<WalRecord> = (0..100i64)
            .map(|i| WalRecord::Insert { coll: "c".into(), doc: doc! {"_id" => i} })
            .collect();
        let last = wal.append_batch(&records).unwrap();
        assert_eq!(last, 100);
        let scan = scan_wal(&dir.join("wal.log")).unwrap();
        assert_eq!(scan.frames.len(), 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
