//! `Ord + Hash` wrapper over [`Value`] under the canonical comparison
//! semantics, used for B-tree index keys and `$group` hash keys.

use doclite_bson::{NumericKey, Value};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// A [`Value`] ordered and hashed under canonical (cross-numeric-type)
/// semantics: `Int32(1)`, `Int64(1)` and `Double(1.0)` are one key.
#[derive(Clone, Debug)]
pub struct OrdValue(pub Value);

impl OrdValue {
    /// Borrows the wrapped value.
    pub fn value(&self) -> &Value {
        &self.0
    }

    /// Unwraps into the inner value.
    pub fn into_value(self) -> Value {
        self.0
    }
}

impl From<Value> for OrdValue {
    fn from(v: Value) -> Self {
        OrdValue(v)
    }
}

impl PartialEq for OrdValue {
    fn eq(&self, other: &Self) -> bool {
        self.0.canonical_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.canonical_cmp(&other.0)
    }
}

impl Hash for OrdValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_value(&self.0, state);
    }
}

pub(crate) fn hash_value<H: Hasher>(v: &Value, state: &mut H) {
    match v {
        Value::Null => state.write_u8(0),
        // All numerics hash their exact NumericKey normal form so
        // cross-type equal values land in the same bucket (matches
        // canonical_eq) without the lossy f64 collapse that used to
        // merge distinct i64 values past 2^53.
        Value::Int32(_) | Value::Int64(_) | Value::Double(_) => {
            state.write_u8(1);
            match NumericKey::of(v).expect("numeric") {
                NumericKey::Nan => state.write_u8(0),
                NumericKey::Negative { ck, cm } => {
                    state.write_u8(1);
                    state.write_u16(ck);
                    state.write_u64(cm);
                }
                NumericKey::Zero => state.write_u8(2),
                NumericKey::Positive { k, m } => {
                    state.write_u8(3);
                    state.write_u16(k);
                    state.write_u64(m);
                }
            }
        }
        Value::String(s) => {
            state.write_u8(2);
            s.hash(state);
        }
        Value::Document(d) => {
            state.write_u8(3);
            for (k, val) in d.iter() {
                k.hash(state);
                hash_value(val, state);
            }
        }
        Value::Array(items) => {
            state.write_u8(4);
            for item in items {
                hash_value(item, state);
            }
        }
        Value::Bool(b) => {
            state.write_u8(5);
            state.write_u8(u8::from(*b));
        }
        Value::ObjectId(oid) => {
            state.write_u8(6);
            state.write(oid.bytes());
        }
        Value::DateTime(ms) => {
            state.write_u8(7);
            state.write_i64(*ms);
        }
    }
}

/// A compound key: one [`OrdValue`] per indexed field, ordered
/// lexicographically.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompoundKey(pub Vec<OrdValue>);

impl CompoundKey {
    /// Builds a key from plain values.
    pub fn from_values(values: Vec<Value>) -> Self {
        CompoundKey(values.into_iter().map(OrdValue).collect())
    }

    /// The key arity.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the key has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;

    fn hash_of(v: &OrdValue) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_type_numeric_keys_unify() {
        let a = OrdValue(Value::Int32(5));
        let b = OrdValue(Value::Int64(5));
        let c = OrdValue(Value::Double(5.0));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(hash_of(&b), hash_of(&c));
    }

    #[test]
    fn negative_zero_unifies_with_zero() {
        let a = OrdValue(Value::Double(0.0));
        let b = OrdValue(Value::Double(-0.0));
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn large_integer_keys_stay_distinct() {
        // Regression: these all hashed AND compared equal when numerics
        // unified through f64.
        let hi = OrdValue(Value::Int64(i64::MAX));
        let lo = OrdValue(Value::Int64(i64::MAX - 1));
        assert_ne!(hi, lo);
        assert_ne!(hash_of(&hi), hash_of(&lo));
        assert!(hi > lo);

        let big = OrdValue(Value::Int64((1 << 53) + 1));
        let rounded = OrdValue(Value::Double((1i64 << 53) as f64));
        assert_ne!(big, rounded);
        assert!(big > rounded);

        // Exactly-representable crossings still unify.
        let min_i = OrdValue(Value::Int64(i64::MIN));
        let min_d = OrdValue(Value::Double(-9_223_372_036_854_775_808.0));
        assert_eq!(min_i, min_d);
        assert_eq!(hash_of(&min_i), hash_of(&min_d));
    }

    #[test]
    fn usable_as_hashmap_key() {
        let mut m: HashMap<OrdValue, i32> = HashMap::new();
        m.insert(OrdValue(Value::Int32(1)), 10);
        assert_eq!(m.get(&OrdValue(Value::Double(1.0))), Some(&10));
        assert_eq!(m.get(&OrdValue(Value::from("1"))), None);
    }

    #[test]
    fn compound_key_orders_lexicographically() {
        let a = CompoundKey::from_values(vec![Value::Int32(1), Value::from("b")]);
        let b = CompoundKey::from_values(vec![Value::Int32(1), Value::from("c")]);
        let c = CompoundKey::from_values(vec![Value::Int32(2), Value::from("a")]);
        assert!(a < b);
        assert!(b < c);
    }
}
