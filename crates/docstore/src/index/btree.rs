//! Ordered B-tree index backing.
//!
//! Thesis Section 2.1.2: "MongoDB implements indexing by storing the keys
//! in a B-Tree data structure". We use the standard library's B-tree map
//! keyed by [`CompoundKey`], which gives the same `O(log n)` lookup the
//! thesis's complexity analysis (Section 4.1.3.1.1) assumes.

use crate::ordvalue::{CompoundKey, OrdValue};
use crate::storage::DocId;
use doclite_bson::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A B-tree mapping compound keys to posting lists of document ids.
#[derive(Debug, Default)]
pub struct BTreeIndex {
    map: BTreeMap<CompoundKey, Vec<DocId>>,
    entries: usize,
}

impl BTreeIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry.
    pub fn insert(&mut self, key: CompoundKey, id: DocId) {
        self.map.entry(key).or_default().push(id);
        self.entries += 1;
    }

    /// Removes an entry, pruning empty posting lists.
    pub fn remove(&mut self, key: &CompoundKey, id: DocId) {
        if let Some(list) = self.map.get_mut(key) {
            if let Some(pos) = list.iter().position(|&d| d == id) {
                list.swap_remove(pos);
                self.entries -= 1;
            }
            if list.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Ids for an exact key.
    pub fn lookup_eq(&self, key: &CompoundKey) -> Vec<DocId> {
        self.map.get(key).cloned().unwrap_or_default()
    }

    /// Ids whose key's *first component* falls within the bounds
    /// (inclusive flags per bound). `None` bounds are unbounded.
    ///
    /// Compound keys are ordered lexicographically, so a first-component
    /// range corresponds to a contiguous B-tree span: we bracket with
    /// minimal/maximal sentinel suffixes.
    pub fn lookup_first_field_range(
        &self,
        min: Option<(&Value, bool)>,
        max: Option<(&Value, bool)>,
    ) -> Vec<DocId> {
        let lower: Bound<CompoundKey> = match min {
            None => Bound::Unbounded,
            Some((v, inclusive)) => {
                // Null is the minimum in canonical order, so (v, Null…) is
                // the smallest key whose first component is v.
                let key = CompoundKey(vec![OrdValue(v.clone())]);
                if inclusive {
                    Bound::Included(key)
                } else {
                    // Smallest key strictly greater than every key whose
                    // first component is v: rely on prefix ordering —
                    // exclusive on (v) itself still admits (v, x) suffixes,
                    // so filter below.
                    Bound::Excluded(key)
                }
            }
        };
        let upper: Bound<CompoundKey> = Bound::Unbounded;

        let mut out = Vec::new();
        for (k, ids) in self.map.range((lower, upper)) {
            let first = k.0.first().map(OrdValue::value);
            let Some(first) = first else { continue };
            if let Some((lo, inclusive)) = min {
                let ord = first.canonical_cmp(lo);
                if ord == std::cmp::Ordering::Less
                    || (!inclusive && ord == std::cmp::Ordering::Equal)
                {
                    continue;
                }
            }
            if let Some((hi, inclusive)) = max {
                let ord = first.canonical_cmp(hi);
                if ord == std::cmp::Ordering::Greater
                    || (!inclusive && ord == std::cmp::Ordering::Equal)
                {
                    break;
                }
            }
            out.extend_from_slice(ids);
        }
        out
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Number of (key, id) entries.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// All ids in ascending key order.
    pub fn all_ids_ordered(&self) -> Vec<DocId> {
        let mut out = Vec::with_capacity(self.entries);
        for ids in self.map.values() {
            out.extend_from_slice(ids);
        }
        out
    }

    /// Iterates (key, ids) in ascending order — used by chunk splitting.
    pub fn iter(&self) -> impl Iterator<Item = (&CompoundKey, &Vec<DocId>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: i64) -> CompoundKey {
        CompoundKey::from_values(vec![Value::Int64(v)])
    }

    fn populated() -> BTreeIndex {
        let mut idx = BTreeIndex::new();
        for (i, v) in [(1, 10), (2, 20), (3, 20), (4, 30), (5, 40)] {
            idx.insert(k(v), i);
        }
        idx
    }

    #[test]
    fn eq_lookup() {
        let idx = populated();
        assert_eq!(idx.lookup_eq(&k(20)), vec![2, 3]);
        assert!(idx.lookup_eq(&k(99)).is_empty());
    }

    #[test]
    fn range_inclusive_exclusive() {
        let idx = populated();
        let v20 = Value::Int64(20);
        let v30 = Value::Int64(30);
        let mut ids = idx.lookup_first_field_range(Some((&v20, true)), Some((&v30, true)));
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3, 4]);
        let ids = idx.lookup_first_field_range(Some((&v20, false)), Some((&v30, false)));
        assert!(ids.is_empty());
    }

    #[test]
    fn unbounded_ranges() {
        let idx = populated();
        let v30 = Value::Int64(30);
        let mut ids = idx.lookup_first_field_range(None, Some((&v30, false)));
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
        let mut ids = idx.lookup_first_field_range(Some((&v30, true)), None);
        ids.sort_unstable();
        assert_eq!(ids, vec![4, 5]);
        assert_eq!(idx.lookup_first_field_range(None, None).len(), 5);
    }

    #[test]
    fn remove_prunes() {
        let mut idx = populated();
        idx.remove(&k(20), 2);
        assert_eq!(idx.lookup_eq(&k(20)), vec![3]);
        idx.remove(&k(20), 3);
        assert!(idx.lookup_eq(&k(20)).is_empty());
        assert_eq!(idx.key_count(), 3);
        assert_eq!(idx.entry_count(), 3);
    }

    #[test]
    fn ordered_ids_follow_key_order() {
        let idx = populated();
        assert_eq!(idx.all_ids_ordered(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn range_over_compound_keys_filters_on_first_component() {
        let mut idx = BTreeIndex::new();
        idx.insert(CompoundKey::from_values(vec![Value::Int64(1), Value::from("z")]), 1);
        idx.insert(CompoundKey::from_values(vec![Value::Int64(2), Value::from("a")]), 2);
        idx.insert(CompoundKey::from_values(vec![Value::Int64(2), Value::from("b")]), 3);
        idx.insert(CompoundKey::from_values(vec![Value::Int64(3), Value::from("a")]), 4);
        let v2 = Value::Int64(2);
        let mut ids = idx.lookup_first_field_range(Some((&v2, true)), Some((&v2, true)));
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }
}
