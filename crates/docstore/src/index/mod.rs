//! Secondary indexes: B-tree (single-field and compound, with multikey
//! array expansion) and hashed, mirroring the index types of thesis
//! Section 2.1.2 that the workload uses.

pub mod btree;
pub mod hashed;
pub mod keys;
pub mod text;

use crate::error::{Error, Result};
use crate::ordvalue::CompoundKey;
use crate::storage::DocId;
use doclite_bson::Document;

pub use btree::BTreeIndex;
pub use hashed::HashedIndex;
pub use keys::extract_keys;
pub use text::{text_matches, tokenize, TextIndex};

/// Per-field sort direction in a compound index definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortOrder {
    Ascending,
    Descending,
}

impl SortOrder {
    /// `1` / `-1`, as in index specs.
    pub fn as_i32(self) -> i32 {
        match self {
            SortOrder::Ascending => 1,
            SortOrder::Descending => -1,
        }
    }
}

/// The kind of on-disk structure backing an index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Ordered B-tree index: supports equality and range scans, and serves
    /// as the backing structure for range-partitioned shard keys.
    BTree,
    /// Hash index: equality only; backs hashed shard keys.
    Hashed,
}

/// An index definition: a name, the indexed fields with their sort
/// directions, kind, and uniqueness.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexDef {
    pub name: String,
    pub fields: Vec<(String, SortOrder)>,
    pub kind: IndexKind,
    pub unique: bool,
}

impl IndexDef {
    /// A single-field ascending B-tree index named `<field>_1`.
    pub fn single(field: impl Into<String>) -> Self {
        let field = field.into();
        IndexDef {
            name: format!("{field}_1"),
            fields: vec![(field, SortOrder::Ascending)],
            kind: IndexKind::BTree,
            unique: false,
        }
    }

    /// A compound ascending B-tree index named `<f1>_1_<f2>_1…`.
    pub fn compound<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let fields: Vec<(String, SortOrder)> = fields
            .into_iter()
            .map(|f| (f.into(), SortOrder::Ascending))
            .collect();
        let name = fields
            .iter()
            .map(|(f, _)| format!("{f}_1"))
            .collect::<Vec<_>>()
            .join("_");
        IndexDef { name, fields, kind: IndexKind::BTree, unique: false }
    }

    /// A single-field hashed index named `<field>_hashed`.
    pub fn hashed(field: impl Into<String>) -> Self {
        let field = field.into();
        IndexDef {
            name: format!("{field}_hashed"),
            fields: vec![(field, SortOrder::Ascending)],
            kind: IndexKind::Hashed,
            unique: false,
        }
    }

    /// Marks the index unique.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// The indexed field names, in order.
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|(f, _)| f.as_str()).collect()
    }

    /// Validates the definition.
    pub fn validate(&self) -> Result<()> {
        if self.fields.is_empty() {
            return Err(Error::InvalidIndex("index must have at least one field".into()));
        }
        if self.kind == IndexKind::Hashed && self.fields.len() > 1 {
            return Err(Error::InvalidIndex(
                "hashed indexes must be single-field".into(),
            ));
        }
        let mut names: Vec<&str> = self.field_names();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.fields.len() {
            return Err(Error::InvalidIndex("duplicate field in index".into()));
        }
        Ok(())
    }
}

/// A live index: its definition plus the backing structure.
#[derive(Debug)]
pub struct Index {
    pub def: IndexDef,
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    BTree(BTreeIndex),
    Hashed(HashedIndex),
}

impl Index {
    /// Creates an empty index for a definition.
    pub fn new(def: IndexDef) -> Result<Self> {
        def.validate()?;
        let backing = match def.kind {
            IndexKind::BTree => Backing::BTree(BTreeIndex::new()),
            IndexKind::Hashed => Backing::Hashed(HashedIndex::new()),
        };
        Ok(Index { def, backing })
    }

    /// Indexes a document under its id. Returns `DuplicateId` for unique
    /// violations (no entries are left behind on failure).
    pub fn insert(&mut self, id: DocId, doc: &Document) -> Result<()> {
        let keys = extract_keys(doc, &self.def)?;
        if self.def.unique {
            for k in &keys {
                if self.contains_key(k) {
                    return Err(Error::DuplicateId(format!("{:?}", k.0)));
                }
            }
        }
        for k in keys {
            match &mut self.backing {
                Backing::BTree(b) => b.insert(k, id),
                Backing::Hashed(h) => h.insert(k, id),
            }
        }
        Ok(())
    }

    /// Removes a document's entries.
    pub fn remove(&mut self, id: DocId, doc: &Document) {
        if let Ok(keys) = extract_keys(doc, &self.def) {
            for k in keys {
                match &mut self.backing {
                    Backing::BTree(b) => b.remove(&k, id),
                    Backing::Hashed(h) => h.remove(&k, id),
                }
            }
        }
    }

    fn contains_key(&self, key: &CompoundKey) -> bool {
        match &self.backing {
            Backing::BTree(b) => !b.lookup_eq(key).is_empty(),
            Backing::Hashed(h) => !h.lookup_eq(key).is_empty(),
        }
    }

    /// Ids whose key equals `key` exactly.
    pub fn lookup_eq(&self, key: &CompoundKey) -> Vec<DocId> {
        match &self.backing {
            Backing::BTree(b) => b.lookup_eq(key),
            Backing::Hashed(h) => h.lookup_eq(key),
        }
    }

    /// Ids whose *first key component* falls in the given bounds
    /// (B-tree only; a hashed index returns `None`).
    pub fn lookup_range(
        &self,
        min: Option<(&doclite_bson::Value, bool)>,
        max: Option<(&doclite_bson::Value, bool)>,
    ) -> Option<Vec<DocId>> {
        match &self.backing {
            Backing::BTree(b) => Some(b.lookup_first_field_range(min, max)),
            Backing::Hashed(_) => None,
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        match &self.backing {
            Backing::BTree(b) => b.key_count(),
            Backing::Hashed(h) => h.key_count(),
        }
    }

    /// Total number of (key, id) entries.
    pub fn entry_count(&self) -> usize {
        match &self.backing {
            Backing::BTree(b) => b.entry_count(),
            Backing::Hashed(h) => h.entry_count(),
        }
    }

    /// All ids in key order (B-tree) or arbitrary order (hashed); used by
    /// ordered-scan plans.
    pub fn all_ids_ordered(&self) -> Vec<DocId> {
        match &self.backing {
            Backing::BTree(b) => b.all_ids_ordered(),
            Backing::Hashed(h) => h.all_ids(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    #[test]
    fn def_builders_name_conventionally() {
        assert_eq!(IndexDef::single("a").name, "a_1");
        assert_eq!(IndexDef::compound(["a", "b"]).name, "a_1_b_1");
        assert_eq!(IndexDef::hashed("a").name, "a_hashed");
    }

    #[test]
    fn validation_rejects_bad_defs() {
        assert!(IndexDef { name: "x".into(), fields: vec![], kind: IndexKind::BTree, unique: false }
            .validate()
            .is_err());
        let mut h = IndexDef::hashed("a");
        h.fields.push(("b".into(), SortOrder::Ascending));
        assert!(h.validate().is_err());
        let dup = IndexDef::compound(["a", "a"]);
        assert!(dup.validate().is_err());
    }

    #[test]
    fn unique_index_rejects_duplicates_without_partial_state() {
        let mut idx = Index::new(IndexDef::single("k").unique()).unwrap();
        idx.insert(1, &doc! {"k" => 5i64}).unwrap();
        assert!(idx.insert(2, &doc! {"k" => 5i64}).is_err());
        assert_eq!(idx.entry_count(), 1);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut idx = Index::new(IndexDef::single("k")).unwrap();
        let d = doc! {"k" => 5i64};
        idx.insert(1, &d).unwrap();
        idx.insert(2, &d).unwrap();
        assert_eq!(idx.entry_count(), 2);
        idx.remove(1, &d);
        assert_eq!(idx.entry_count(), 1);
        let key = CompoundKey::from_values(vec![doclite_bson::Value::Int64(5)]);
        assert_eq!(idx.lookup_eq(&key), vec![2]);
    }
}
