//! Text index: "text indexes support searching for string contents in a
//! collection" (thesis Section 2.1.2, index type vi).
//!
//! A text index tokenizes one string field into lowercase alphanumeric
//! terms and maintains a term → posting-list map. The `$text` filter
//! matches documents containing *all* the search terms (MongoDB's
//! conjunctive behaviour for unquoted terms within a single search
//! string is OR; the thesis never exercises it, and AND is the variant
//! useful for the workload's description fields — the difference is
//! documented here).

use crate::storage::DocId;
use doclite_bson::{Document, Value};
use std::collections::HashMap;

/// Lowercases and splits a string into alphanumeric terms.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut terms: Vec<String> = text
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect();
    terms.sort();
    terms.dedup();
    terms
}

/// The inverted index backing a text index.
#[derive(Debug, Default)]
pub struct TextIndex {
    postings: HashMap<String, Vec<DocId>>,
    entries: usize,
}

impl TextIndex {
    /// Creates an empty text index.
    pub fn new() -> Self {
        Self::default()
    }

    fn field_terms(doc: &Document, field: &str) -> Vec<String> {
        match doc.get_path(field) {
            Some(Value::String(s)) => tokenize(&s),
            // An array of strings indexes every element's terms.
            Some(Value::Array(items)) => {
                let mut terms: Vec<String> = items
                    .iter()
                    .filter_map(|v| v.as_str().map(tokenize))
                    .flatten()
                    .collect();
                terms.sort();
                terms.dedup();
                terms
            }
            _ => Vec::new(),
        }
    }

    /// Indexes a document's field.
    pub fn insert(&mut self, id: DocId, doc: &Document, field: &str) {
        for term in Self::field_terms(doc, field) {
            self.postings.entry(term).or_default().push(id);
            self.entries += 1;
        }
    }

    /// Removes a document's entries.
    pub fn remove(&mut self, id: DocId, doc: &Document, field: &str) {
        for term in Self::field_terms(doc, field) {
            if let Some(list) = self.postings.get_mut(&term) {
                if let Some(pos) = list.iter().position(|&d| d == id) {
                    list.swap_remove(pos);
                    self.entries -= 1;
                }
                if list.is_empty() {
                    self.postings.remove(&term);
                }
            }
        }
    }

    /// Ids of documents containing *all* the query's terms (candidate
    /// set; the matcher re-verifies).
    pub fn search(&self, query: &str) -> Vec<DocId> {
        let terms = tokenize(query);
        if terms.is_empty() {
            return Vec::new();
        }
        // Intersect posting lists, smallest first.
        let mut lists: Vec<&Vec<DocId>> = match terms
            .iter()
            .map(|t| self.postings.get(t))
            .collect::<Option<Vec<_>>>()
        {
            Some(ls) => ls,
            None => return Vec::new(), // some term matches nothing
        };
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<DocId> = lists[0].clone();
        for list in &lists[1..] {
            let set: std::collections::HashSet<DocId> = list.iter().copied().collect();
            result.retain(|id| set.contains(id));
            if result.is_empty() {
                break;
            }
        }
        result.sort_unstable();
        result.dedup();
        result
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Number of (term, id) entries.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// All indexed ids (arbitrary order, deduplicated).
    pub fn all_ids(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> = self.postings.values().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// True if `text` contains every term of `query` (the `$text` match
/// predicate, usable without an index too).
pub fn text_matches(text: &str, query: &str) -> bool {
    let hay = tokenize(text);
    tokenize(query).iter().all(|t| hay.binary_search(t).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::{array, doc};

    #[test]
    fn tokenize_lowercases_and_dedups() {
        assert_eq!(tokenize("The quick, the QUICK fox!"), vec!["fox", "quick", "the"]);
        assert!(tokenize("  ,,, ").is_empty());
    }

    #[test]
    fn insert_search_remove() {
        let mut idx = TextIndex::new();
        let d1 = doc! {"desc" => "special national offer"};
        let d2 = doc! {"desc" => "national economic plan"};
        idx.insert(1, &d1, "desc");
        idx.insert(2, &d2, "desc");
        assert_eq!(idx.search("national"), vec![1, 2]);
        assert_eq!(idx.search("special national"), vec![1]);
        assert_eq!(idx.search("ECONOMIC"), vec![2]);
        assert!(idx.search("missingterm").is_empty());
        assert!(idx.search("").is_empty());
        idx.remove(1, &d1, "desc");
        assert_eq!(idx.search("national"), vec![2]);
    }

    #[test]
    fn array_fields_index_every_element() {
        let mut idx = TextIndex::new();
        let d = doc! {"tags" => array!["red wine", "oak barrel"]};
        idx.insert(7, &d, "tags");
        assert_eq!(idx.search("oak"), vec![7]);
        assert_eq!(idx.search("wine barrel"), vec![7]);
    }

    #[test]
    fn non_string_fields_index_nothing() {
        let mut idx = TextIndex::new();
        idx.insert(1, &doc! {"desc" => 42i64}, "desc");
        assert_eq!(idx.entry_count(), 0);
        assert!(idx.all_ids().is_empty());
    }

    #[test]
    fn text_matches_predicate() {
        assert!(text_matches("Important issues, live!", "issues important"));
        assert!(!text_matches("Important issues", "important unrelated"));
        assert!(text_matches("anything", ""));
    }
}
