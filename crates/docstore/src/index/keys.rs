//! Index key extraction, including multikey array expansion.

use super::IndexDef;
use crate::error::{Error, Result};
use crate::ordvalue::CompoundKey;
use doclite_bson::{Document, Value};

/// Extracts the index keys a document contributes under a definition.
///
/// * A missing field indexes as `Null` (MongoDB behaviour — this is what
///   lets `$exists:false`-style scans and sparse data coexist in one
///   B-tree).
/// * If exactly one indexed field resolves to an array, the document
///   contributes one key per element (the *multikey* case of thesis
///   Section 2.1.2 item iv). Two array fields in one compound key are
///   rejected, as in MongoDB.
pub fn extract_keys(doc: &Document, def: &IndexDef) -> Result<Vec<CompoundKey>> {
    let resolved: Vec<Value> = def
        .fields
        .iter()
        .map(|(f, _)| doc.get_path(f).unwrap_or(Value::Null))
        .collect();

    let array_positions: Vec<usize> = resolved
        .iter()
        .enumerate()
        .filter(|(_, v)| matches!(v, Value::Array(_)))
        .map(|(i, _)| i)
        .collect();

    match array_positions.len() {
        0 => Ok(vec![CompoundKey::from_values(resolved)]),
        1 => {
            let pos = array_positions[0];
            let Value::Array(items) = &resolved[pos] else {
                unreachable!("position found above")
            };
            if items.is_empty() {
                // An empty array indexes as Null, like MongoDB.
                let mut vals = resolved.clone();
                vals[pos] = Value::Null;
                return Ok(vec![CompoundKey::from_values(vals)]);
            }
            Ok(items
                .iter()
                .map(|item| {
                    let mut vals = resolved.clone();
                    vals[pos] = item.clone();
                    CompoundKey::from_values(vals)
                })
                .collect())
        }
        _ => Err(Error::InvalidIndex(format!(
            "cannot index parallel arrays in compound index {}",
            def.name
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexDef;
    use doclite_bson::{array, doc};

    #[test]
    fn scalar_key() {
        let def = IndexDef::compound(["a", "b"]);
        let keys = extract_keys(&doc! {"a" => 1i64, "b" => "x"}, &def).unwrap();
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].0[0].value(), &Value::Int64(1));
        assert_eq!(keys[0].0[1].value(), &Value::from("x"));
    }

    #[test]
    fn missing_field_indexes_as_null() {
        let def = IndexDef::compound(["a", "b"]);
        let keys = extract_keys(&doc! {"a" => 1i64}, &def).unwrap();
        assert_eq!(keys[0].0[1].value(), &Value::Null);
    }

    #[test]
    fn multikey_expansion() {
        let def = IndexDef::compound(["a", "tags"]);
        let keys = extract_keys(&doc! {"a" => 1i64, "tags" => array!["x", "y"]}, &def).unwrap();
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].0[1].value(), &Value::from("x"));
        assert_eq!(keys[1].0[1].value(), &Value::from("y"));
    }

    #[test]
    fn empty_array_indexes_as_null() {
        let def = IndexDef::single("tags");
        let keys = extract_keys(&doc! {"tags" => Value::Array(vec![])}, &def).unwrap();
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].0[0].value(), &Value::Null);
    }

    #[test]
    fn parallel_arrays_rejected() {
        let def = IndexDef::compound(["a", "b"]);
        let d = doc! {"a" => array![1i64], "b" => array![2i64]};
        assert!(extract_keys(&d, &def).is_err());
    }

    #[test]
    fn dotted_path_keys() {
        let def = IndexDef::single("addr.city");
        let keys =
            extract_keys(&doc! {"addr" => doc!{"city" => "Midway"}}, &def).unwrap();
        assert_eq!(keys[0].0[0].value(), &Value::from("Midway"));
    }
}
