//! Hash index backing (equality lookups only).
//!
//! Backs the `Hashed` index kind and — through [`hash_key`] — hashed
//! shard keys (thesis Section 2.1.3.3: "a hash is computed on the shard
//! key value; documents with nearby shard key values are likely to reside
//! in different chunks").

use crate::ordvalue::CompoundKey;
use crate::storage::DocId;
use doclite_bson::Value;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Computes the stable 64-bit hash of a value used by hashed indexes and
/// hashed shard keys. Deterministic across runs (fixed-seed FxHash-style
/// mixing over the canonical hash), so chunk assignment is reproducible.
pub fn hash_key(v: &Value) -> u64 {
    let mut h = StableHasher::default();
    // Hash the borrowed value directly with the canonical normalization
    // OrdValue's Hash impl applies — same bytes, no per-key clone.
    crate::ordvalue::hash_value(v, &mut h);
    h.finish()
}

/// A deterministic hasher (FNV-1a over the written bytes); `DefaultHasher`
/// would also be deterministic in practice but its algorithm is not
/// guaranteed stable across Rust releases.
#[derive(Default)]
struct StableHasher {
    state: u64,
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        // Final avalanche (splitmix64) to spread low-entropy inputs.
        let mut z = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        const FNV_PRIME: u64 = 0x1000_0000_01B3;
        let mut s = if self.state == 0 { 0xCBF2_9CE4_8422_2325 } else { self.state };
        for &b in bytes {
            s ^= u64::from(b);
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }
}

/// A hash index mapping key hashes to posting lists. Collisions are
/// handled by storing the exact key alongside.
#[derive(Debug, Default)]
pub struct HashedIndex {
    map: HashMap<u64, Vec<(CompoundKey, Vec<DocId>)>>,
    entries: usize,
}

impl HashedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_hash(key: &CompoundKey) -> u64 {
        let mut h = StableHasher::default();
        key.hash(&mut h);
        h.finish()
    }

    /// Adds an entry.
    pub fn insert(&mut self, key: CompoundKey, id: DocId) {
        let hash = Self::bucket_hash(&key);
        let bucket = self.map.entry(hash).or_default();
        match bucket.iter_mut().find(|(k, _)| *k == key) {
            Some((_, ids)) => ids.push(id),
            None => bucket.push((key, vec![id])),
        }
        self.entries += 1;
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &CompoundKey, id: DocId) {
        let hash = Self::bucket_hash(key);
        if let Some(bucket) = self.map.get_mut(&hash) {
            if let Some((_, ids)) = bucket.iter_mut().find(|(k, _)| k == key) {
                if let Some(pos) = ids.iter().position(|&d| d == id) {
                    ids.swap_remove(pos);
                    self.entries -= 1;
                }
            }
            bucket.retain(|(_, ids)| !ids.is_empty());
            if bucket.is_empty() {
                self.map.remove(&hash);
            }
        }
    }

    /// Ids for an exact key.
    pub fn lookup_eq(&self, key: &CompoundKey) -> Vec<DocId> {
        let hash = Self::bucket_hash(key);
        self.map
            .get(&hash)
            .and_then(|bucket| bucket.iter().find(|(k, _)| k == key))
            .map(|(_, ids)| ids.clone())
            .unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Number of (key, id) entries.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// All ids, arbitrary order.
    pub fn all_ids(&self) -> Vec<DocId> {
        let mut out = Vec::with_capacity(self.entries);
        for bucket in self.map.values() {
            for (_, ids) in bucket {
                out.extend_from_slice(ids);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: i64) -> CompoundKey {
        CompoundKey::from_values(vec![Value::Int64(v)])
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = HashedIndex::new();
        idx.insert(k(1), 10);
        idx.insert(k(1), 11);
        idx.insert(k(2), 12);
        assert_eq!(idx.lookup_eq(&k(1)), vec![10, 11]);
        assert_eq!(idx.entry_count(), 3);
        idx.remove(&k(1), 10);
        assert_eq!(idx.lookup_eq(&k(1)), vec![11]);
        idx.remove(&k(1), 11);
        assert!(idx.lookup_eq(&k(1)).is_empty());
        assert_eq!(idx.key_count(), 1);
    }

    #[test]
    fn hash_key_is_deterministic_and_type_insensitive_for_numbers() {
        assert_eq!(hash_key(&Value::Int64(42)), hash_key(&Value::Int64(42)));
        assert_eq!(hash_key(&Value::Int32(42)), hash_key(&Value::Double(42.0)));
        assert_ne!(hash_key(&Value::Int64(42)), hash_key(&Value::Int64(43)));
    }

    #[test]
    fn hash_key_spreads_sequential_values() {
        // Nearby keys should land far apart — the property hashed sharding
        // relies on to avoid hot chunks (thesis 2.1.3.3).
        let h1 = hash_key(&Value::Int64(1000));
        let h2 = hash_key(&Value::Int64(1001));
        assert!(h1.abs_diff(h2) > 1 << 32);
    }

    #[test]
    fn all_ids_complete() {
        let mut idx = HashedIndex::new();
        for i in 0..100 {
            idx.insert(k(i), i as DocId);
        }
        let mut ids = idx.all_ids();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }
}
