//! The shared worker pool behind morsel-parallel query execution and
//! the router's scatter-gather fan-out.
//!
//! One process-wide pool of lazily-spawned worker threads executes
//! index-claimed task batches: a caller hands in `tasks` logical indices
//! and a closure, workers (plus the caller itself) claim indices off a
//! shared atomic counter until the range is drained, and the caller
//! blocks until every claimed task has finished. Blocking the caller is
//! what makes the lifetime erasure sound — the closure and everything it
//! borrows outlive the batch by construction, exactly the guarantee
//! `std::thread::scope` provides, without paying a thread spawn per
//! call (the cost `scatter_legs` used to pay per routed operation).
//!
//! Two deliberate degradations keep the pool deadlock-free:
//!
//! * **Busy pool → inline.** Only one batch is open for claiming at a
//!   time. A caller that finds the pool busy — including a worker whose
//!   task itself calls [`parallel_for`], as a shard leg running the
//!   parallel executor does — runs its batch inline on its own thread.
//!   Nested parallelism therefore composes without a lock hierarchy:
//!   the outer layer fans out, the inner layers run serial.
//! * **One core → inline.** With a single available core (or
//!   `workers <= 1`) there is nothing to overlap; the batch runs inline
//!   with zero synchronization.
//!
//! Task panics are caught per task, the batch is drained to completion,
//! and the panic re-raises on the caller — matching the join semantics
//! of the scoped-thread code this replaces.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard ceiling on pool threads, far above any sane worker-count knob;
/// a runaway `set_parallel_workers` cannot fork-bomb the process.
const MAX_POOL_THREADS: usize = 64;

/// Process-wide worker-count override; 0 = auto (available parallelism).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count for parallel execution (the
/// stress driver and benches sweep this). `0` restores auto-detection.
/// Values are clamped to [`MAX_POOL_THREADS`].
pub fn set_parallel_workers(n: usize) {
    WORKER_OVERRIDE.store(n.min(MAX_POOL_THREADS), Ordering::Relaxed);
}

/// The effective worker count: the override if set, otherwise the
/// machine's available parallelism (1 if unknown).
pub fn parallel_workers() -> usize {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        n => n,
    }
}

/// The caller's borrowed task closure with its lifetime erased to
/// `'static`. Sound to ship across threads because [`parallel_for`]
/// does not return until every task that calls it has completed, so the
/// borrow outlives every use. (`&dyn Fn + Sync` is `Send + Sync` by the
/// ordinary auto rules; only the lifetime is lied about.)
type TaskFn = &'static (dyn Fn(usize) + Sync);

/// One submitted batch: an index-claim counter over `total` tasks plus
/// completion bookkeeping.
struct Batch {
    f: TaskFn,
    total: usize,
    /// Next unclaimed task index (may run past `total`).
    next: AtomicUsize,
    /// Helper slots still available (caller participation not counted).
    helpers: AtomicUsize,
    /// (unfinished task count, a task panicked) under one lock.
    state: Mutex<(usize, bool)>,
    done: Condvar,
}

impl Batch {
    /// Claims and runs tasks until the index range is drained.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            let panicked = catch_unwind(AssertUnwindSafe(|| (self.f)(i))).is_err();
            let mut st = lock(&self.state);
            st.0 -= 1;
            st.1 |= panicked;
            if st.0 == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// The pool: a one-deep submission slot plus lazily spawned workers.
struct Pool {
    /// The batch currently open for claiming, if any.
    slot: Mutex<Option<std::sync::Arc<Batch>>>,
    /// Signals workers that a new batch was installed.
    wake: Condvar,
    /// Worker threads spawned so far.
    spawned: AtomicUsize,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Pool-internal critical sections never run user code, so the only
    // poisoning source is a bug in this module; propagate the panic.
    m.lock().expect("pool lock poisoned")
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        slot: Mutex::new(None),
        wake: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Ensures at least `n` worker threads exist (capped at
/// [`MAX_POOL_THREADS`]). Threads are detached and live for the process;
/// they block on the wake condvar between batches.
fn ensure_workers(pool: &'static Pool, n: usize) {
    let n = n.min(MAX_POOL_THREADS);
    loop {
        let have = pool.spawned.load(Ordering::Relaxed);
        if have >= n {
            return;
        }
        if pool
            .spawned
            .compare_exchange(have, have + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        std::thread::Builder::new()
            .name(format!("doclite-pool-{have}"))
            .spawn(move || worker_loop(pool))
            .expect("spawn pool worker");
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let batch = {
            let mut slot = lock(&pool.slot);
            loop {
                if let Some(b) = slot.as_ref() {
                    if b.next.load(Ordering::Relaxed) >= b.total {
                        // Fully claimed; clear so submitters see a free
                        // slot without waiting for stragglers to finish.
                        *slot = None;
                        continue;
                    }
                    // Join only if the batch still wants helpers, so a
                    // 2-worker batch on an 8-thread pool really runs
                    // with 2 executors.
                    let mut h = b.helpers.load(Ordering::Relaxed);
                    let joined = loop {
                        if h == 0 {
                            break false;
                        }
                        match b.helpers.compare_exchange(
                            h,
                            h - 1,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break true,
                            Err(now) => h = now,
                        }
                    };
                    if joined {
                        break b.clone();
                    }
                }
                slot = pool.wake.wait(slot).expect("pool lock poisoned");
            }
        };
        batch.work();
    }
}

/// Runs `f(0) .. f(tasks - 1)`, each exactly once, using up to `workers`
/// concurrent executors (the calling thread plus pool helpers). Returns
/// after every task has completed. Panics if any task panicked.
///
/// Degrades to an inline serial loop when `workers <= 1`, `tasks <= 1`,
/// or the pool's submission slot is busy (which is how nested calls —
/// a parallel shard leg inside a parallel scatter — stay deadlock-free).
pub fn parallel_for(workers: usize, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if workers <= 1 || tasks <= 1 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    let pool = pool();
    let helpers = workers.min(tasks) - 1;
    // SAFETY: lifetime erasure only — this function blocks below until
    // every task has finished, so the borrow outlives all uses.
    let erased: TaskFn = unsafe { std::mem::transmute(f) };
    let batch = std::sync::Arc::new(Batch {
        f: erased,
        total: tasks,
        next: AtomicUsize::new(0),
        helpers: AtomicUsize::new(helpers),
        state: Mutex::new((tasks, false)),
        done: Condvar::new(),
    });
    {
        let mut slot = lock(&pool.slot);
        let busy = slot.as_ref().is_some_and(|b| b.next.load(Ordering::Relaxed) < b.total);
        if busy {
            drop(slot);
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        *slot = Some(batch.clone());
    }
    ensure_workers(pool, helpers);
    pool.wake.notify_all();

    // The caller is an executor too; it claims alongside the helpers.
    batch.work();
    let mut st = lock(&batch.state);
    while st.0 > 0 {
        st = batch.done.wait(st).expect("pool lock poisoned");
    }
    let panicked = st.1;
    drop(st);
    if panicked {
        panic!("parallel_for task panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        for tasks in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(4, tasks, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} of {tasks}");
            }
        }
    }

    #[test]
    fn results_can_be_written_into_per_index_slots() {
        let slots: Vec<OnceLock<usize>> = (0..100).map(|_| OnceLock::new()).collect();
        parallel_for(8, slots.len(), &|i| {
            let _ = slots[i].set(i * i);
        });
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(s.get(), Some(&(i * i)));
        }
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let total = AtomicU64::new(0);
        parallel_for(4, 8, &|_| {
            // The inner call finds the slot busy and runs inline.
            parallel_for(4, 8, &|j| {
                total.fetch_add(j as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
    }

    #[test]
    fn task_panic_propagates_after_batch_drains() {
        let ran = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(4, 16, &|i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "panic must re-raise on the caller");
        assert_eq!(ran.load(Ordering::Relaxed), 16, "batch drains fully");
    }

    #[test]
    fn worker_override_round_trips() {
        set_parallel_workers(3);
        assert_eq!(parallel_workers(), 3);
        set_parallel_workers(0);
        assert!(parallel_workers() >= 1);
    }

    #[test]
    fn serial_fallback_handles_zero_and_one_worker() {
        let n = AtomicUsize::new(0);
        parallel_for(0, 5, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        parallel_for(1, 5, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 10);
    }
}
