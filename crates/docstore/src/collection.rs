//! Collections: the unit of storage, indexing, and querying.

use crate::agg::{
    accum, exec, kernel, parallel, stream, CompiledSortSpec, ExecMode, Expr, GroupId, Pipeline,
    Stage,
};
use crate::columnar;
use crate::pool;
use crate::error::{Error, Result};
use crate::index::{extract_keys, Index, IndexDef, IndexKind, SortOrder};
use crate::ordvalue::CompoundKey;
use crate::query::filter::Filter;
use crate::query::matcher::{compile, matches_compiled, CompiledFilter};
use crate::query::planner::{
    columnar_index_threshold, conjunctive_constraints, plan, plan_with_stats, Plan, PlanKind,
    SMALL_COLLECTION,
};
use crate::stats::{self, CollStats, PlannerMode};
use crate::storage::{DocId, Slab};
use crate::update::{apply_update, upsert_seed, UpdateResult, UpdateSpec};
use crate::wal::{delete_records_chunked, Wal, WalRecord};
use doclite_bson::{codec::encoded_size, Document, Value, MAX_DOCUMENT_SIZE};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Options for a `find`: sort, skip, limit, projection.
#[derive(Clone, Debug, Default)]
pub struct FindOptions {
    /// Sort spec: `(path, 1|-1)` pairs.
    pub sort: Vec<(String, i32)>,
    /// Documents to skip after sorting.
    pub skip: usize,
    /// Maximum documents to return (0 = unlimited).
    pub limit: usize,
    /// Paths to include (empty = whole documents).
    pub projection: Vec<String>,
}

impl FindOptions {
    /// Default options (no sort/skip/limit/projection).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sort key.
    pub fn sort_by(mut self, path: impl Into<String>, dir: i32) -> Self {
        self.sort.push((path.into(), dir));
        self
    }

    /// Sets the limit.
    pub fn with_limit(mut self, n: usize) -> Self {
        self.limit = n;
        self
    }

    /// Sets the skip.
    pub fn with_skip(mut self, n: usize) -> Self {
        self.skip = n;
        self
    }

    /// Adds a projected path.
    pub fn include(mut self, path: impl Into<String>) -> Self {
        self.projection.push(path.into());
        self
    }
}

/// Execution report returned by [`Collection::explain`], in the spirit of
/// `db.collection.explain()`.
#[derive(Clone, Debug, PartialEq)]
pub struct Explain {
    /// `COLLSCAN` or `IXSCAN { <index> }`.
    pub plan: String,
    /// Whether an index served the fetch.
    pub used_index: bool,
    /// Candidate documents fetched before the residual filter.
    pub docs_examined: usize,
    /// Documents that satisfied the full filter.
    pub docs_returned: usize,
    /// Cost-model row estimate for the filter (`None` under
    /// [`PlannerMode::Rule`]). Comparing it against `docs_returned`
    /// measures estimation error.
    pub est_rows: Option<u64>,
}

/// One stage's entry in an [`AggExplain`] report.
#[derive(Clone, Debug)]
pub struct StageExplain {
    /// Stage name (`$match`, `$lookup`, …).
    pub stage: String,
    /// Cost-model estimate of rows *leaving* the stage, where the model
    /// has one (leading `$match` stages under [`PlannerMode::Cost`]).
    pub est_rows: Option<u64>,
    /// Rows that actually left the stage.
    pub actual_rows: u64,
    /// The physical decision taken, when one was made: the access plan
    /// for a leading `$match`, the join strategy for a `$lookup`.
    pub decision: Option<String>,
}

/// Execution report for an aggregation pipeline, in the spirit of
/// `db.collection.explain()` on an aggregate: per-stage estimated vs
/// actual row counts plus the planner decisions taken. Runs the
/// pipeline stage-by-stage on the legacy executor to observe the
/// intermediate cardinalities.
#[derive(Clone, Debug)]
pub struct AggExplain {
    /// Source collection name.
    pub collection: String,
    /// One entry per executed stage (a trailing `$out` is skipped).
    pub stages: Vec<StageExplain>,
    /// When the pipeline read a materialized view: frames the view's
    /// watermark lags behind the WAL head (0 = fresh). `None` for a
    /// direct collection read.
    pub view_staleness: Option<u64>,
}

struct Inner {
    slab: Slab,
    indexes: Vec<Index>,
    /// Optional columnar sidecar over declared fields, maintained by
    /// every slab mutation below (insert/update/delete and their WAL
    /// rollbacks) so it is always consistent with the slab.
    columnar: Option<columnar::ColumnSet>,
    /// Per-field statistics for the cost-based planner, adjusted by the
    /// same mutations (write paths use `get_mut`, so the mutex is
    /// uncontended there; read-path planning locks it briefly under the
    /// shared `inner` lock — lock order `inner` → `stats`).
    stats: Mutex<CollStats>,
}

/// A collection of documents with secondary indexes. Thread-safe: reads
/// take a shared lock, writes an exclusive one (the engine-level analogue
/// of MongoDB's collection-level locking the thesis discusses in its
/// future-work chapter).
pub struct Collection {
    name: String,
    inner: RwLock<Inner>,
    /// Write-ahead log, if the owning database is durable. Writes are
    /// logged *after* applying but *before* acknowledging, while still
    /// holding the exclusive `inner` lock, so frame order always agrees
    /// with apply order (lock order: `inner` → WAL mutex).
    wal: RwLock<Option<Arc<Wal>>>,
    /// Full columnar-mode scans served without a sidecar, feeding the
    /// auto-enable heuristic (see [`Collection::aggregate_with_mode`]).
    columnar_scans: AtomicU64,
}

impl Collection {
    /// Creates an empty collection with the default unique `_id` index.
    pub fn new(name: impl Into<String>) -> Self {
        let id_index = Index::new(IndexDef {
            name: "_id_".to_owned(),
            fields: vec![("_id".to_owned(), SortOrder::Ascending)],
            kind: IndexKind::BTree,
            unique: true,
        })
        .expect("_id index definition is valid");
        Collection {
            name: name.into(),
            inner: RwLock::new(Inner {
                slab: Slab::new(),
                indexes: vec![id_index],
                columnar: None,
                stats: Mutex::new(CollStats::new()),
            }),
            wal: RwLock::new(None),
            columnar_scans: AtomicU64::new(0),
        }
    }

    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Routes subsequent writes through a write-ahead log. Recovery
    /// attaches the WAL only *after* replay, so replayed operations are
    /// not re-logged.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        *self.wal.write() = Some(wal);
    }

    fn wal_handle(&self) -> Option<Arc<Wal>> {
        self.wal.read().clone()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.inner.read().slab.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded size of stored documents in bytes.
    pub fn data_size(&self) -> usize {
        self.inner.read().slab.data_size()
    }

    /// Average encoded document size in bytes (0 if empty).
    pub fn avg_doc_size(&self) -> usize {
        let inner = self.inner.read();
        inner
            .slab
            .data_size()
            .checked_div(inner.slab.len())
            .unwrap_or(0)
    }

    /// Inserts one document, assigning an ObjectId `_id` if absent.
    /// Returns the document's id value.
    pub fn insert_one(&self, mut doc: Document) -> Result<Value> {
        let id = doc.ensure_id();
        let size = encoded_size(&doc);
        if size > MAX_DOCUMENT_SIZE {
            return Err(Error::DocumentTooLarge { size, max: MAX_DOCUMENT_SIZE });
        }
        let wal = self.wal_handle();
        let logged = wal.as_ref().map(|_| doc.clone());
        let mut inner = self.inner.write();
        let slot = Self::insert_locked(&mut inner, doc)?;
        if let Some(wal) = wal {
            if let Err(e) = wal.append(&WalRecord::Insert {
                coll: self.name.clone(),
                doc: logged.expect("cloned when wal attached"),
            }) {
                // The append rewound the log; undo the apply too, so the
                // errored insert is absent everywhere.
                Self::rollback_inserts(&mut inner, &[slot]);
                return Err(e);
            }
        }
        Ok(id)
    }

    /// Inserts many documents; stops at the first error, returning the
    /// count inserted so far alongside the error. If the batch's WAL
    /// append fails, every insert of this call is rolled back (memory
    /// rejoins the rewound log) and the count reported is 0.
    pub fn insert_many(
        &self,
        docs: impl IntoIterator<Item = Document>,
    ) -> std::result::Result<usize, (usize, Error)> {
        let wal = self.wal_handle();
        let mut inner = self.inner.write();
        let mut n = 0;
        let mut logged: Vec<WalRecord> = Vec::new();
        let mut applied: Vec<DocId> = Vec::new();
        // The successfully-inserted prefix is logged (as one group
        // commit) even when a later document errors: those inserts are
        // applied and must survive a crash.
        let flush = |records: &[WalRecord]| -> Result<()> {
            match &wal {
                Some(w) if !records.is_empty() => w.append_batch(records).map(|_| ()),
                _ => Ok(()),
            }
        };
        for mut doc in docs {
            doc.ensure_id();
            let size = encoded_size(&doc);
            if size > MAX_DOCUMENT_SIZE {
                return match flush(&logged) {
                    Ok(()) => Err((n, Error::DocumentTooLarge { size, max: MAX_DOCUMENT_SIZE })),
                    Err(e) => {
                        Self::rollback_inserts(&mut inner, &applied);
                        Err((0, e))
                    }
                };
            }
            if wal.is_some() {
                logged.push(WalRecord::Insert { coll: self.name.clone(), doc: doc.clone() });
            }
            match Self::insert_locked(&mut inner, doc) {
                Ok(slot) => {
                    if wal.is_some() {
                        applied.push(slot);
                    }
                }
                Err(e) => {
                    logged.pop();
                    return match flush(&logged) {
                        Ok(()) => Err((n, e)),
                        Err(le) => {
                            Self::rollback_inserts(&mut inner, &applied);
                            Err((0, le))
                        }
                    };
                }
            }
            n += 1;
        }
        if let Err(e) = flush(&logged) {
            Self::rollback_inserts(&mut inner, &applied);
            return Err((0, e));
        }
        Ok(n)
    }

    fn insert_locked(inner: &mut Inner, doc: Document) -> Result<DocId> {
        // Validate unique indexes before touching state.
        for idx in &inner.indexes {
            if idx.def.unique {
                for key in extract_keys(&doc, &idx.def)? {
                    if !idx.lookup_eq(&key).is_empty() {
                        return Err(Error::DuplicateId(format!("{:?}", key.0)));
                    }
                }
            }
        }
        // Split-borrow so the indexes can read the stored document in
        // place instead of cloning it for backfill.
        let Inner { slab, indexes, columnar, stats } = inner;
        let id = slab.insert(doc);
        let doc_ref = slab.get(id).expect("just inserted");
        for idx in indexes.iter_mut() {
            idx.insert(id, doc_ref)
                .expect("uniqueness pre-validated");
        }
        if let Some(cs) = columnar {
            cs.set_row(id, doc_ref);
        }
        stats.get_mut().record_insert(doc_ref);
        Ok(id)
    }

    /// Undoes applied-but-unlogged inserts after a WAL append failure
    /// (the append already rewound the log), so memory and log agree
    /// again and a later seal fingerprint stays reproducible.
    fn rollback_inserts(inner: &mut Inner, slots: &[DocId]) {
        for slot in slots.iter().rev() {
            if let Some(doc) = inner.slab.remove(*slot) {
                for idx in &mut inner.indexes {
                    idx.remove(*slot, &doc);
                }
                if let Some(cs) = &mut inner.columnar {
                    cs.clear_row(*slot);
                }
                inner.stats.get_mut().record_delete(&doc);
            }
        }
    }

    /// Creates an index; backfills existing documents. Creating an index
    /// that already exists (same definition) is a no-op.
    pub fn create_index(&self, def: IndexDef) -> Result<()> {
        def.validate()?;
        let wal = self.wal_handle();
        let mut inner = self.inner.write();
        if let Some(existing) = inner.indexes.iter().find(|i| i.def.name == def.name) {
            if existing.def == def {
                return Ok(());
            }
            return Err(Error::IndexConflict(def.name));
        }
        let logged = wal.as_ref().map(|_| def.clone());
        let tracked: Vec<String> = def.field_names().iter().map(|s| (*s).to_owned()).collect();
        let mut idx = Index::new(def)?;
        for (id, doc) in inner.slab.iter() {
            idx.insert(id, doc)?;
        }
        inner.indexes.push(idx);
        if let Some(wal) = wal {
            if let Err(e) = wal.append(&WalRecord::CreateIndex {
                coll: self.name.clone(),
                def: logged.expect("cloned when wal attached"),
            }) {
                inner.indexes.pop();
                return Err(e);
            }
        }
        // Indexed fields are exactly the ones the cost model needs
        // selectivities for; tracking forces a rebuild before the next
        // cost-based plan.
        inner.stats.get_mut().track_fields(tracked.iter().map(String::as_str));
        Ok(())
    }

    /// Drops an index by name (the `_id_` index cannot be dropped).
    pub fn drop_index(&self, name: &str) -> Result<()> {
        if name == "_id_" {
            return Err(Error::InvalidIndex("cannot drop the _id index".into()));
        }
        let wal = self.wal_handle();
        let mut inner = self.inner.write();
        let pos = inner
            .indexes
            .iter()
            .position(|i| i.def.name == name)
            .ok_or_else(|| Error::NoSuchIndex(name.to_owned()))?;
        let removed = inner.indexes.remove(pos);
        if let Some(wal) = wal {
            if let Err(e) = wal.append(&WalRecord::DropIndex {
                coll: self.name.clone(),
                name: name.to_owned(),
            }) {
                inner.indexes.insert(pos, removed);
                return Err(e);
            }
        }
        Ok(())
    }

    /// The definitions of all indexes on this collection.
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.inner.read().indexes.iter().map(|i| i.def.clone()).collect()
    }

    /// Total encoded size of index keys — a stand-in for index memory
    /// footprint in working-set calculations (thesis Section 2.1.3.2).
    pub fn index_size(&self) -> usize {
        let inner = self.inner.read();
        inner
            .indexes
            .iter()
            .map(|i| i.entry_count() * 16) // entries × (key ref + DocId)
            .sum()
    }

    fn fetch_candidates(inner: &Inner, plan: &Plan) -> Vec<DocId> {
        match &plan.kind {
            PlanKind::CollScan => inner.slab.iter().map(|(id, _)| id).collect(),
            PlanKind::IndexEq { index, keys } => {
                let idx = Self::index_by_name(inner, index);
                let mut ids = Vec::new();
                for key in keys {
                    ids.extend(idx.lookup_eq(key));
                }
                ids
            }
            PlanKind::IndexRange { index, min, max } => {
                let idx = Self::index_by_name(inner, index);
                idx.lookup_range(
                    min.as_ref().map(|(v, i)| (v, *i)),
                    max.as_ref().map(|(v, i)| (v, *i)),
                )
                .unwrap_or_default()
            }
        }
    }

    fn index_by_name<'a>(inner: &'a Inner, name: &str) -> &'a Index {
        inner
            .indexes
            .iter()
            .find(|i| i.def.name == name)
            .expect("planner only names existing indexes")
    }

    /// Plans `filter` under the process-wide [`PlannerMode`]: `Rule`
    /// runs the legacy prefix-rule planner; `Cost` refreshes stale
    /// statistics and prices index candidates against the scan,
    /// returning the row estimate that drove the choice. Either way the
    /// plan's residual is the full filter, so the mode can never change
    /// results.
    fn plan_with_mode(inner: &Inner, filter: &Filter) -> (Plan, Option<u64>) {
        match stats::planner_mode() {
            PlannerMode::Rule => (plan(filter, &inner.indexes), None),
            PlannerMode::Cost => {
                let live = inner.slab.len();
                let mut st = inner.stats.lock();
                if st.needs_rebuild(live) {
                    st.rebuild(&inner.slab);
                }
                let costed = plan_with_stats(filter, &inner.indexes, &st, live);
                (costed.plan, Some(costed.est_rows))
            }
        }
    }

    /// Finds documents matching a filter.
    pub fn find(&self, filter: &Filter) -> Vec<Document> {
        self.find_with(filter, &FindOptions::default())
    }

    /// Finds with sort/skip/limit/projection.
    pub fn find_with(&self, filter: &Filter, opts: &FindOptions) -> Vec<Document> {
        self.find_with_shared(filter, &compile(filter), opts)
    }

    /// [`Collection::find_with`] with a caller-compiled filter, so hot
    /// paths that evaluate the same filter repeatedly (the sharded
    /// router's scatter legs) compile it once. Matching candidates are
    /// sorted and windowed as *references*; only the documents of the
    /// final page are cloned (or projected directly from storage).
    ///
    /// The read lock is held only long enough to plan and snapshot the
    /// candidate documents (refcount bumps, no clones); residual
    /// matching, sorting, and paging run lock-free, so a slow scan
    /// cannot convoy writers — and other readers — behind it.
    pub fn find_with_shared(
        &self,
        filter: &Filter,
        compiled: &CompiledFilter,
        opts: &FindOptions,
    ) -> Vec<Document> {
        let snapshot: Vec<Arc<Document>> = {
            let inner = self.inner.read();
            let (plan, _) = Self::plan_with_mode(&inner, filter);
            let ids = Self::fetch_candidates(&inner, &plan);
            ids.into_iter().filter_map(|id| inner.slab.get_shared(id)).collect()
        };
        let mut matched: Vec<&Document> = snapshot
            .iter()
            .map(|d| &**d)
            .filter(|d| matches_compiled(compiled, d))
            .collect();

        if !opts.sort.is_empty() {
            // Stable sort over references with keys extracted once per
            // document (borrowed, not cloned): identical ordering
            // (including ties) to sorting the cloned documents.
            let cs = CompiledSortSpec::new(&opts.sort);
            let keys: Vec<_> = matched.iter().map(|d| cs.key_refs(d)).collect();
            let mut perm: Vec<usize> = (0..matched.len()).collect();
            perm.sort_unstable_by(|&a, &b| cs.compare(&keys[a], &keys[b]).then(a.cmp(&b)));
            matched = perm.into_iter().map(|i| matched[i]).collect();
        }
        let lo = opts.skip.min(matched.len());
        let hi = if opts.limit > 0 {
            opts.skip.saturating_add(opts.limit).min(matched.len())
        } else {
            matched.len()
        };
        let page = &matched[lo..hi];
        if opts.projection.is_empty() {
            page.iter().map(|d| (*d).clone()).collect()
        } else {
            page.iter().map(|d| project_paths(d, &opts.projection)).collect()
        }
    }

    /// Finds the first matching document.
    pub fn find_one(&self, filter: &Filter) -> Option<Document> {
        self.find_with(filter, &FindOptions::new().with_limit(1))
            .into_iter()
            .next()
    }

    /// Counts matching documents without materializing them.
    pub fn count(&self, filter: &Filter) -> usize {
        let inner = self.inner.read();
        let (plan, _) = Self::plan_with_mode(&inner, filter);
        let compiled = compile(filter);
        let ids = Self::fetch_candidates(&inner, &plan);
        ids.into_iter()
            .filter_map(|id| inner.slab.get(id))
            .filter(|d| matches_compiled(&compiled, d))
            .count()
    }

    /// Explains how a filter would execute, running it to report counts.
    pub fn explain(&self, filter: &Filter) -> Explain {
        let inner = self.inner.read();
        let (plan, est_rows) = Self::plan_with_mode(&inner, filter);
        let ids = Self::fetch_candidates(&inner, &plan);
        let compiled = compile(filter);
        let docs_examined = ids.len();
        let docs_returned = ids
            .into_iter()
            .filter_map(|id| inner.slab.get(id))
            .filter(|d| matches_compiled(&compiled, d))
            .count();
        Explain {
            plan: plan.describe(),
            used_index: plan.uses_index(),
            docs_examined,
            docs_returned,
            est_rows,
        }
    }

    /// Updates matching documents.
    ///
    /// The four parameters mirror the thesis's description of the update
    /// query in Fig 4.7 step 10: selection criteria, modification,
    /// `upsert`, and `multi`.
    pub fn update(
        &self,
        filter: &Filter,
        spec: &UpdateSpec,
        upsert: bool,
        multi: bool,
    ) -> Result<UpdateResult> {
        let wal = self.wal_handle();
        let mut inner = self.inner.write();
        let (plan, _) = Self::plan_with_mode(&inner, filter);
        let compiled = compile(filter);
        let ids = Self::fetch_candidates(&inner, &plan);
        let mut logged: Vec<WalRecord> = Vec::new();
        // Pre-images (and any upserted slot), kept only while a WAL is
        // attached, so a failed append can undo the in-memory applies.
        let mut undo: Vec<(DocId, Document)> = Vec::new();
        let mut upserted_slot: Option<DocId> = None;

        // Applied post-images are logged even when a later document
        // errors: their effects are in memory and must survive a crash.
        let outcome = (|| -> Result<UpdateResult> {
            let mut result = UpdateResult::default();
            for id in ids {
                let Some(doc) = inner.slab.get(id) else { continue };
                if !matches_compiled(&compiled, doc) {
                    continue;
                }
                result.matched += 1;
                let mut updated = doc.clone();
                if apply_update(&mut updated, spec)? {
                    let size = encoded_size(&updated);
                    if size > MAX_DOCUMENT_SIZE {
                        return Err(Error::DocumentTooLarge { size, max: MAX_DOCUMENT_SIZE });
                    }
                    let old = inner
                        .slab
                        .replace(id, updated.clone())
                        .expect("doc exists");
                    for idx in &mut inner.indexes {
                        idx.remove(id, &old);
                        idx.insert(id, &updated)?;
                    }
                    if let Some(cs) = &mut inner.columnar {
                        cs.set_row(id, &updated);
                    }
                    inner.stats.get_mut().record_update(&old, &updated);
                    // Log the post-image so replay is independent of
                    // how the update expression computed it.
                    if wal.is_some() {
                        undo.push((id, old));
                        logged.push(WalRecord::Update { coll: self.name.clone(), doc: updated });
                    }
                    result.modified += 1;
                }
                if !multi {
                    break;
                }
            }

            if result.matched == 0 && upsert {
                let mut seed = upsert_seed(filter);
                apply_update(&mut seed, spec)?;
                let id = seed.ensure_id();
                let record = wal
                    .is_some()
                    .then(|| WalRecord::Insert { coll: self.name.clone(), doc: seed.clone() });
                let slot = Self::insert_locked(&mut inner, seed)?;
                if let Some(r) = record {
                    upserted_slot = Some(slot);
                    logged.push(r);
                }
                result.upserted_id = Some(id);
            }
            Ok(result)
        })();

        if let Some(wal) = wal {
            if !logged.is_empty() {
                if let Err(e) = wal.append_batch(&logged) {
                    // The append rewound the log; undo the applies in
                    // reverse order so memory rejoins it.
                    if let Some(slot) = upserted_slot {
                        Self::rollback_inserts(&mut inner, &[slot]);
                    }
                    for (id, old) in undo.into_iter().rev() {
                        let new = inner.slab.replace(id, old).expect("doc exists");
                        let Inner { slab, indexes, columnar, stats } = &mut *inner;
                        let old_ref = slab.get(id).expect("just restored");
                        for idx in indexes.iter_mut() {
                            idx.remove(id, &new);
                            idx.insert(id, old_ref).expect("was indexed before");
                        }
                        if let Some(cs) = columnar {
                            cs.set_row(id, old_ref);
                        }
                        stats.get_mut().record_update(&new, old_ref);
                    }
                    return Err(e);
                }
            }
        }
        outcome
    }

    /// Deletes matching documents, returning the count removed. A WAL
    /// append failure rolls the whole delete back (see
    /// [`Collection::try_delete_many`]) and reports 0 removed; callers
    /// that need the error itself should use the fallible form.
    pub fn delete_many(&self, filter: &Filter) -> usize {
        self.try_delete_many(filter).unwrap_or(0)
    }

    /// Fallible [`Collection::delete_many`]. The removed `_id`s are
    /// logged as size-bounded `Delete` frames in one group commit; on
    /// append failure the log is rewound, every removal is reinserted,
    /// and the error is returned — the delete either fully happened
    /// (memory and log) or not at all.
    pub fn try_delete_many(&self, filter: &Filter) -> Result<usize> {
        let wal = self.wal_handle();
        let mut inner = self.inner.write();
        let (plan, _) = Self::plan_with_mode(&inner, filter);
        let compiled = compile(filter);
        let ids = Self::fetch_candidates(&inner, &plan);
        let mut removed = 0;
        let mut removed_ids: Vec<Value> = Vec::new();
        let mut undo: Vec<Document> = Vec::new();
        for id in ids {
            let is_match = inner
                .slab
                .get(id)
                .is_some_and(|d| matches_compiled(&compiled, d));
            if !is_match {
                continue;
            }
            let old = inner.slab.remove(id).expect("checked above");
            for idx in &mut inner.indexes {
                idx.remove(id, &old);
            }
            if let Some(cs) = &mut inner.columnar {
                cs.clear_row(id);
            }
            inner.stats.get_mut().record_delete(&old);
            if wal.is_some() {
                if let Some(doc_id) = old.id() {
                    removed_ids.push(doc_id.clone());
                }
                undo.push(old);
            }
            removed += 1;
        }
        if let Some(wal) = wal {
            if !removed_ids.is_empty() {
                let records = delete_records_chunked(&self.name, removed_ids);
                if let Err(e) = wal.append_batch(&records) {
                    for doc in undo.into_iter().rev() {
                        Self::insert_locked(&mut inner, doc)
                            .expect("rollback reinserts a doc that was just removed");
                    }
                    return Err(e);
                }
            }
        }
        Ok(removed)
    }

    /// Runs an aggregation pipeline. A trailing `$out` stage is ignored
    /// here (results are returned); use `Database::aggregate` to
    /// materialize into a collection.
    ///
    /// The leading `$match` run is served through the planner, so an
    /// indexed `$match` avoids a full scan — the optimization MongoDB
    /// applies and the thesis's queries depend on.
    pub fn aggregate(&self, pipeline: &Pipeline) -> Result<Vec<Document>> {
        self.aggregate_with(pipeline, None)
    }

    /// [`Collection::aggregate`] with a `$lookup` resolver (the database
    /// that owns the foreign collections). Dispatches on the process-wide
    /// default [`ExecMode`].
    pub fn aggregate_with(
        &self,
        pipeline: &Pipeline,
        source: Option<&dyn exec::LookupSource>,
    ) -> Result<Vec<Document>> {
        self.aggregate_with_mode(pipeline, source, stream::default_exec_mode())
    }

    /// [`Collection::aggregate_with`] with an explicit executor choice.
    ///
    /// `Legacy` is the original materializing path: clone out every
    /// document, then run each stage over owned `Vec<Document>`s.
    /// `Streaming` fuses the stages over an iterator of borrowed
    /// documents, with the whole leading `$match` run ANDed together and
    /// served through the query planner, so a selective indexed match
    /// touches (and clones) only the documents that survive.
    pub fn aggregate_with_mode(
        &self,
        pipeline: &Pipeline,
        source: Option<&dyn exec::LookupSource>,
        mode: ExecMode,
    ) -> Result<Vec<Document>> {
        let stages = pipeline.stages();
        let body: &[Stage] = match stages.last() {
            Some(Stage::Out(_)) => &stages[..stages.len() - 1],
            _ => stages,
        };
        match mode {
            ExecMode::Legacy => exec::execute_with(self.all_docs(), body, source),
            ExecMode::Streaming => self.aggregate_streaming(body, source),
            ExecMode::Parallel => self.aggregate_parallel(body, source),
            ExecMode::Columnar => {
                let workers = pool::parallel_workers();
                self.aggregate_columnar(
                    body,
                    source,
                    workers,
                    parallel::auto_morsel_size(self.len(), workers),
                )
            }
        }
    }

    /// Declares scalar fields to maintain as typed column vectors and
    /// builds them from the current contents; subsequent writes keep
    /// them consistent. Aggregations run with [`ExecMode::Columnar`]
    /// then evaluate covered `$match`/`$group`/`$count` prefixes over
    /// the columns instead of materialized documents.
    pub fn enable_columnar<I, S>(&self, fields: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let fields: Vec<String> = fields.into_iter().map(Into::into).collect();
        let mut inner = self.inner.write();
        inner.stats.get_mut().track_fields(fields.iter().map(String::as_str));
        let mut cs = columnar::ColumnSet::new(fields);
        cs.rebuild(&inner.slab);
        inner.columnar = Some(cs);
    }

    /// True if a columnar sidecar is maintained.
    pub fn columnar_enabled(&self) -> bool {
        self.inner.read().columnar.is_some()
    }

    /// Drops the columnar sidecar (aggregations fall back to streaming).
    pub fn disable_columnar(&self) {
        self.inner.write().columnar = None;
    }

    /// [`ExecMode::Columnar`] execution with explicit worker/chunk
    /// knobs, for equivalence tests that sweep both. A trailing `$out`
    /// is ignored, as in [`Collection::aggregate_with_mode`].
    pub fn aggregate_columnar_with(
        &self,
        pipeline: &Pipeline,
        source: Option<&dyn exec::LookupSource>,
        workers: usize,
        chunk: usize,
    ) -> Result<Vec<Document>> {
        let stages = pipeline.stages();
        let body: &[Stage] = match stages.last() {
            Some(Stage::Out(_)) => &stages[..stages.len() - 1],
            _ => stages,
        };
        self.aggregate_columnar(body, source, workers, chunk)
    }

    /// Columnar execution: plan the covered prefix against the sidecar,
    /// evaluate it in chunks under the read lock, then release the lock
    /// and run the uncovered suffix on the streaming executor (so a
    /// `$lookup` back into this collection cannot deadlock). No sidecar
    /// or no covered prefix delegates the whole pipeline to streaming.
    fn aggregate_columnar(
        &self,
        body: &[Stage],
        source: Option<&dyn exec::LookupSource>,
        workers: usize,
        chunk: usize,
    ) -> Result<Vec<Document>> {
        self.maybe_auto_columnar(body);
        let inner = self.inner.read();
        let Some(plan) = inner.columnar.as_ref().and_then(|cs| columnar::plan(body, cs))
        else {
            drop(inner);
            return self.aggregate_streaming(body, source);
        };
        // The sidecar covers the prefix, but a selective indexed $match
        // is still cheaper than scanning every column value. Under the
        // rule planner any usable index wins (the pre-cost-model
        // behavior); under the cost model the index must beat the
        // vectorized kernel's per-row cost.
        let (filter, _) = Self::split_match_pushdown(body);
        if Self::prefer_index_scan(&inner, &filter) {
            drop(inner);
            return self.aggregate_streaming(body, source);
        }
        let cs = inner.columnar.as_ref().expect("plan implies a sidecar");
        let prefix_out = columnar::execute(cs, &inner.slab, &plan, workers, chunk)?;
        let rest = plan.rest;
        drop(inner);
        stream::run_streaming(stream::DocStream::from_vec(prefix_out), rest, source)
    }

    /// Whether the leading `$match` should run through an index on the
    /// row path instead of the columnar kernel. `Rule`: any usable index
    /// wins. `Cost`: only when the estimated match fraction is below
    /// [`columnar_index_threshold`] (small collections defer to the
    /// rule, like [`plan_with_stats`]).
    fn prefer_index_scan(inner: &Inner, filter: &Filter) -> bool {
        match stats::planner_mode() {
            PlannerMode::Rule => plan(filter, &inner.indexes).uses_index(),
            PlannerMode::Cost => {
                let live = inner.slab.len();
                if live <= SMALL_COLLECTION {
                    return plan(filter, &inner.indexes).uses_index();
                }
                let mut st = inner.stats.lock();
                if st.needs_rebuild(live) {
                    st.rebuild(&inner.slab);
                }
                let frac = st.estimate_fraction(filter);
                drop(st);
                frac < columnar_index_threshold() && plan(filter, &inner.indexes).uses_index()
            }
        }
    }

    /// Auto-enables the columnar sidecar once the collection has served
    /// [`stats::AUTO_COLUMNAR_SCANS`] sidecar-less columnar-mode scans
    /// and holds at least [`stats::AUTO_COLUMNAR_MIN_DOCS`] documents —
    /// the point where the vectorized kernel repays the sidecar memory.
    /// Disabled via [`stats::set_columnar_auto`].
    fn maybe_auto_columnar(&self, body: &[Stage]) {
        if !stats::columnar_auto() || self.columnar_enabled() {
            return;
        }
        if self.len() < stats::AUTO_COLUMNAR_MIN_DOCS {
            return;
        }
        let fields = Self::columnar_candidate_fields(body);
        if fields.is_empty() {
            return;
        }
        let scans = self.columnar_scans.fetch_add(1, Ordering::Relaxed) + 1;
        if scans >= stats::AUTO_COLUMNAR_SCANS {
            self.enable_columnar(fields);
        }
    }

    /// The scalar paths a pipeline's covered prefix would read from a
    /// sidecar: leading-`$match` constraint paths plus the first
    /// `$group`'s key and accumulator fields.
    fn columnar_candidate_fields(body: &[Stage]) -> Vec<String> {
        let (filter, rest) = Self::split_match_pushdown(body);
        let mut fields: Vec<String> = conjunctive_constraints(&filter).into_keys().collect();
        if let Some(Stage::Group { id, fields: accs }) = rest.first() {
            if let GroupId::Expr(Expr::Field(p)) = id {
                fields.push(p.clone());
            }
            for (_, acc) in accs {
                if let Expr::Field(p) = accum::spec_expr(acc) {
                    fields.push(p.clone());
                }
            }
        }
        fields.sort_unstable();
        fields.dedup();
        fields
    }

    /// Plans the leading `$match` run and snapshots the candidate
    /// documents under the read lock (refcount bumps only), releasing it
    /// before any stage executes. The snapshot is consistent — documents
    /// are immutable in place, updates swap whole slots — and lock-free
    /// execution means an analytical scan no longer convoys concurrent
    /// writers (or `$lookup` re-entry into this collection) behind it.
    fn snapshot_candidates(&self, filter: &Filter) -> Vec<Arc<Document>> {
        let inner = self.inner.read();
        let (plan, _) = Self::plan_with_mode(&inner, filter);
        let ids = Self::fetch_candidates(&inner, &plan);
        ids.into_iter().filter_map(|id| inner.slab.get_shared(id)).collect()
    }

    /// Splits off the leading `$match` run for planner pushdown
    /// (MongoDB's optimizer coalesces adjacent `$match`es the same way).
    /// The residual conjunction is always re-applied, so this is safe
    /// for any filter shape.
    fn split_match_pushdown(body: &[Stage]) -> (Filter, &[Stage]) {
        let n_match = body.iter().take_while(|s| matches!(s, Stage::Match(_))).count();
        let filter = Filter::and(body[..n_match].iter().map(|s| match s {
            Stage::Match(f) => f.clone(),
            _ => unreachable!("prefix is all $match"),
        }));
        (filter, &body[n_match..])
    }

    fn aggregate_streaming(
        &self,
        body: &[Stage],
        source: Option<&dyn exec::LookupSource>,
    ) -> Result<Vec<Document>> {
        let (filter, rest) = Self::split_match_pushdown(body);
        let compiled = compile(&filter);
        let snapshot = self.snapshot_candidates(&filter);
        let matched = snapshot
            .iter()
            .map(|d| &**d)
            .filter(move |d| matches_compiled(&compiled, d));
        stream::run_streaming(stream::DocStream::Borrowed(Box::new(matched)), rest, source)
    }

    /// Morsel-driven parallel execution over a candidate snapshot, with
    /// the same leading-`$match` planner pushdown as the streaming path.
    /// The residual filter rides into the pipeline as a `$match` stage —
    /// a per-document stage the parallel executor partitions.
    fn aggregate_parallel(
        &self,
        body: &[Stage],
        source: Option<&dyn exec::LookupSource>,
    ) -> Result<Vec<Document>> {
        let (filter, rest) = Self::split_match_pushdown(body);
        let trivial = matches!(&filter, Filter::And(fs) if fs.is_empty());
        let snapshot = self.snapshot_candidates(&filter);
        let refs: Vec<&Document> = snapshot.iter().map(|d| &**d).collect();
        let mut stages: Vec<Stage> = Vec::with_capacity(1 + rest.len());
        if !trivial {
            stages.push(Stage::Match(filter));
        }
        stages.extend(rest.iter().cloned());
        let workers = pool::parallel_workers();
        parallel::run_parallel(
            &refs,
            &stages,
            source,
            workers,
            parallel::auto_morsel_size(refs.len(), workers),
        )
    }

    /// Visits every document without cloning (shared lock held for the
    /// duration).
    pub fn for_each(&self, mut f: impl FnMut(&Document)) {
        let inner = self.inner.read();
        for (_, doc) in inner.slab.iter() {
            f(doc);
        }
    }

    /// Fallible [`Collection::for_each`]: stops at the first error and
    /// returns it, so callers like the dump writer do not keep encoding
    /// documents into a sink that already failed.
    pub fn try_for_each<E>(
        &self,
        mut f: impl FnMut(&Document) -> std::result::Result<(), E>,
    ) -> std::result::Result<(), E> {
        let inner = self.inner.read();
        for (_, doc) in inner.slab.iter() {
            f(doc)?;
        }
        Ok(())
    }

    /// Clones out all documents.
    pub fn all_docs(&self) -> Vec<Document> {
        let inner = self.inner.read();
        inner.slab.iter().map(|(_, d)| d.clone()).collect()
    }

    /// Runs `f` over the collection's documents borrowed straight from
    /// storage, holding the read lock for the duration — the clone-free
    /// backing for [`crate::agg::LookupSource::with_collection_docs`].
    /// `f` must not call back into this collection (the lock is held).
    pub fn with_docs(&self, f: &mut dyn for<'a> FnMut(&mut (dyn Iterator<Item = &'a Document> + 'a))) {
        let inner = self.inner.read();
        f(&mut inner.slab.iter().map(|(_, d)| d));
    }

    /// Build/probe metadata for the `$lookup` strategy choice: live
    /// document count and whether `field` leads a probe-usable index
    /// (any single-field index, or a compound B-tree whose prefix range
    /// can serve an equality on the first field).
    pub fn lookup_meta(&self, field: &str) -> exec::LookupMeta {
        let inner = self.inner.read();
        let has_index = inner.indexes.iter().any(|i| {
            let names = i.def.field_names();
            names.first() == Some(&field) && (names.len() == 1 || i.def.kind == IndexKind::BTree)
        });
        exec::LookupMeta { docs: inner.slab.len(), has_index }
    }

    /// All documents whose `field` equals `key` under `$lookup` equality
    /// semantics, in slab (insertion-slot) order — the index-nested-loop
    /// probe. Multikey index candidates over-approximate, so every
    /// candidate is re-checked against the resolved value exactly the
    /// way the hash-join path buckets it; with no usable index the probe
    /// degrades to a scan, so results never depend on index presence.
    pub fn docs_by_field_eq(&self, field: &str, key: &Value) -> Vec<Document> {
        let inner = self.inner.read();
        let mut ids: Vec<DocId> = 'ids: {
            for idx in &inner.indexes {
                let names = idx.def.field_names();
                if names.first() != Some(&field) {
                    continue;
                }
                if names.len() == 1 {
                    break 'ids idx.lookup_eq(&CompoundKey::from_values(vec![key.clone()]));
                }
                if idx.def.kind == IndexKind::BTree {
                    if let Some(ids) = idx.lookup_range(Some((key, true)), Some((key, true))) {
                        break 'ids ids;
                    }
                }
            }
            inner.slab.iter().map(|(id, _)| id).collect()
        };
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .filter_map(|id| inner.slab.get(id))
            .filter(|d| d.get_path(field).as_ref().unwrap_or(&Value::Null).canonical_eq(key))
            .cloned()
            .collect()
    }

    /// Estimated fraction of documents matching `filter`, refreshing
    /// stale statistics first.
    pub fn estimate_fraction(&self, filter: &Filter) -> f64 {
        let inner = self.inner.read();
        let mut st = inner.stats.lock();
        if st.needs_rebuild(inner.slab.len()) {
            st.rebuild(&inner.slab);
        }
        st.estimate_fraction(filter)
    }

    /// Estimated matching rows for `filter` (see
    /// [`Collection::estimate_fraction`]).
    pub fn estimate_rows(&self, filter: &Filter) -> u64 {
        let inner = self.inner.read();
        let live = inner.slab.len();
        let mut st = inner.stats.lock();
        if st.needs_rebuild(live) {
            st.rebuild(&inner.slab);
        }
        st.estimate_rows(filter, live)
    }

    /// Registers `paths` with the statistics subsystem so the next
    /// cost-based plan has selectivities for them.
    pub fn track_stats_fields<'a>(&self, paths: impl IntoIterator<Item = &'a str>) {
        self.inner.write().stats.get_mut().track_fields(paths);
    }

    /// Serializes the collection's statistics for the checkpoint
    /// manifest (see [`CollStats::to_doc`]).
    pub fn stats_doc(&self) -> Document {
        self.inner.read().stats.lock().to_doc()
    }

    /// Restores statistics serialized by [`Collection::stats_doc`], so a
    /// recovered database plans as well as it did before the restart.
    pub fn load_stats_doc(&self, d: &Document) {
        *self.inner.write().stats.get_mut() = CollStats::from_doc(d);
    }

    /// Explains an aggregation: runs the pipeline stage-by-stage on the
    /// legacy executor, reporting per-stage estimated vs actual row
    /// counts and the physical decisions (access plan for leading
    /// `$match` stages, join strategy per `$lookup`). A trailing `$out`
    /// is skipped, as in [`Collection::aggregate_with_mode`].
    pub fn explain_aggregate(
        &self,
        pipeline: &Pipeline,
        source: Option<&dyn exec::LookupSource>,
    ) -> Result<AggExplain> {
        let stages = pipeline.stages();
        let body: &[Stage] = match stages.last() {
            Some(Stage::Out(_)) => &stages[..stages.len() - 1],
            _ => stages,
        };
        let mut docs = self.all_docs();
        let mut report = Vec::with_capacity(body.len());
        let mut leading: Vec<Filter> = Vec::new();
        let mut in_leading_run = true;
        for stage in body {
            let mut est_rows = None;
            let mut decision = None;
            match stage {
                Stage::Match(f) if in_leading_run => {
                    leading.push(f.clone());
                    let cum = Filter::and(leading.iter().cloned());
                    let inner = self.inner.read();
                    let (p, est) = Self::plan_with_mode(&inner, &cum);
                    est_rows = est;
                    decision = Some(p.describe());
                }
                Stage::Lookup { from, local_field, foreign_field, .. } => {
                    in_leading_run = false;
                    if let Some(src) = source {
                        let strategy = if kernel::use_indexed_lookup(
                            &docs,
                            src,
                            from,
                            local_field,
                            foreign_field,
                        ) {
                            "INDEX_NESTED_LOOP"
                        } else {
                            "HASH_JOIN"
                        };
                        decision = Some(format!("{strategy} {{ {from}.{foreign_field} }}"));
                    }
                }
                _ => in_leading_run = false,
            }
            docs = exec::execute_stage(docs, stage, source)?;
            report.push(StageExplain {
                stage: stage_name(stage).to_owned(),
                est_rows,
                actual_rows: docs.len() as u64,
                decision,
            });
        }
        Ok(AggExplain { collection: self.name.clone(), stages: report, view_staleness: None })
    }
}

/// The `$`-prefixed name of a stage, for explain output.
fn stage_name(stage: &Stage) -> &'static str {
    match stage {
        Stage::Match(_) => "$match",
        Stage::Project(_) => "$project",
        Stage::Group { .. } => "$group",
        Stage::Sort(_) => "$sort",
        Stage::Limit(_) => "$limit",
        Stage::Skip(_) => "$skip",
        Stage::Unwind(_) => "$unwind",
        Stage::Lookup { .. } => "$lookup",
        Stage::Count(_) => "$count",
        Stage::Out(_) => "$out",
    }
}

/// Projects a document down to `_id` plus the listed paths — the
/// `find`-style inclusion projection. Shared with the sharded router,
/// which applies it after merging when the projection cannot be pushed
/// to the shards.
pub fn project_paths(doc: &Document, paths: &[String]) -> Document {
    let mut out = Document::new();
    if let Some(id) = doc.id() {
        out.set("_id", id.clone());
    }
    for p in paths {
        if let Some(v) = doc.get_path(p) {
            out.set_path(p, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    fn seeded() -> Collection {
        let c = Collection::new("items");
        c.insert_many((0..100).map(|i| {
            doc! {"_id" => i as i64, "grp" => (i % 10) as i64, "val" => (i * 2) as i64}
        }))
        .unwrap();
        c
    }

    #[test]
    fn insert_assigns_object_ids() {
        let c = Collection::new("t");
        let id = c.insert_one(doc! {"a" => 1i64}).unwrap();
        assert!(matches!(id, Value::ObjectId(_)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_id_rejected() {
        let c = Collection::new("t");
        c.insert_one(doc! {"_id" => 1i64}).unwrap();
        assert!(matches!(
            c.insert_one(doc! {"_id" => 1i64}),
            Err(Error::DuplicateId(_))
        ));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn find_uses_id_index() {
        let c = seeded();
        let ex = c.explain(&Filter::eq("_id", 42i64));
        assert!(ex.used_index);
        assert_eq!(ex.docs_examined, 1);
        assert_eq!(ex.docs_returned, 1);
    }

    #[test]
    fn secondary_index_backfills_and_serves() {
        let c = seeded();
        let before = c.explain(&Filter::eq("grp", 3i64));
        assert!(!before.used_index);
        assert_eq!(before.docs_examined, 100);

        c.create_index(IndexDef::single("grp")).unwrap();
        let after = c.explain(&Filter::eq("grp", 3i64));
        assert!(after.used_index);
        assert_eq!(after.docs_examined, 10);
        assert_eq!(after.docs_returned, 10);
    }

    #[test]
    fn create_same_index_twice_is_noop() {
        let c = seeded();
        c.create_index(IndexDef::single("grp")).unwrap();
        c.create_index(IndexDef::single("grp")).unwrap();
        assert_eq!(c.index_defs().len(), 2); // _id_ + grp_1
    }

    #[test]
    fn drop_index_works_but_not_id() {
        let c = seeded();
        c.create_index(IndexDef::single("grp")).unwrap();
        c.drop_index("grp_1").unwrap();
        assert!(c.drop_index("grp_1").is_err());
        assert!(c.drop_index("_id_").is_err());
    }

    #[test]
    fn find_with_sort_skip_limit_projection() {
        let c = seeded();
        let out = c.find_with(
            &Filter::lt("val", 20i64),
            &FindOptions::new()
                .sort_by("val", -1)
                .with_skip(1)
                .with_limit(3)
                .include("val"),
        );
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("val"), Some(&Value::Int64(16)));
        assert!(out[0].get("grp").is_none());
        assert!(out[0].get("_id").is_some());
    }

    #[test]
    fn update_multi_and_single() {
        let c = seeded();
        let r = c
            .update(&Filter::eq("grp", 1i64), &UpdateSpec::set("flag", true), false, true)
            .unwrap();
        assert_eq!(r.matched, 10);
        assert_eq!(r.modified, 10);

        let r = c
            .update(&Filter::eq("grp", 2i64), &UpdateSpec::set("flag", true), false, false)
            .unwrap();
        assert_eq!(r.matched, 1);
    }

    #[test]
    fn update_maintains_indexes() {
        let c = seeded();
        c.create_index(IndexDef::single("grp")).unwrap();
        c.update(&Filter::eq("_id", 5i64), &UpdateSpec::set("grp", 99i64), false, true)
            .unwrap();
        let out = c.find(&Filter::eq("grp", 99i64));
        assert_eq!(out.len(), 1);
        let ex = c.explain(&Filter::eq("grp", 5i64));
        assert_eq!(ex.docs_returned, 9); // one moved out of grp 5
    }

    #[test]
    fn upsert_creates_from_filter_equalities() {
        let c = Collection::new("t");
        let r = c
            .update(
                &Filter::eq("k", 7i64),
                &UpdateSpec::set("v", "new"),
                true,
                true,
            )
            .unwrap();
        assert!(r.upserted_id.is_some());
        let doc = c.find_one(&Filter::eq("k", 7i64)).unwrap();
        assert_eq!(doc.get("v"), Some(&Value::from("new")));
    }

    #[test]
    fn delete_many_removes_and_unindexes() {
        let c = seeded();
        c.create_index(IndexDef::single("grp")).unwrap();
        let n = c.delete_many(&Filter::eq("grp", 0i64));
        assert_eq!(n, 10);
        assert_eq!(c.len(), 90);
        assert!(c.find(&Filter::eq("grp", 0i64)).is_empty());
    }

    #[test]
    fn oversized_document_rejected() {
        let c = Collection::new("t");
        let big = "x".repeat(MAX_DOCUMENT_SIZE);
        assert!(matches!(
            c.insert_one(doc! {"s" => big}),
            Err(Error::DocumentTooLarge { .. })
        ));
    }

    #[test]
    fn aggregate_leading_match_uses_index() {
        use crate::agg::{Accumulator, GroupId, Pipeline};
        let c = seeded();
        c.create_index(IndexDef::single("grp")).unwrap();
        let out = c
            .aggregate(
                &Pipeline::new()
                    .match_stage(Filter::eq("grp", 4i64))
                    .group(GroupId::Null, [("total", Accumulator::sum_field("val"))]),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        // grp 4 holds _ids 4,14,…,94; val = 2*_id
        let expected: i64 = (0..10).map(|i| (4 + 10 * i) * 2).sum();
        assert_eq!(out[0].get("total"), Some(&Value::Int64(expected)));
    }

    #[test]
    fn data_size_accounts_inserts_and_deletes() {
        let c = Collection::new("t");
        assert_eq!(c.data_size(), 0);
        c.insert_one(doc! {"a" => "hello"}).unwrap();
        let sz = c.data_size();
        assert!(sz > 0);
        c.delete_many(&Filter::True);
        assert_eq!(c.data_size(), 0);
        assert_eq!(c.avg_doc_size(), 0);
    }
}
