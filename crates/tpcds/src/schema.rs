//! The TPC-DS schema catalog: all 24 tables (7 fact + 17 dimension) of
//! the retail snowflake schema (thesis Section 3.4), with column types
//! and the primary-/foreign-key relationships the migration and
//! query-translation algorithms consume.

use std::fmt;

/// Logical column types (the subset TPC-DS uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// Integer surrogate keys, counts, identifiers.
    Integer,
    /// Fixed-point money/price values (stored as doubles in documents).
    Decimal,
    /// Fixed or variable width strings.
    Char,
    /// Calendar dates rendered `YYYY-MM-DD`.
    Date,
}

/// One column of a table.
#[derive(Clone, Debug)]
pub struct Column {
    pub name: &'static str,
    pub ty: ColumnType,
    pub nullable: bool,
}

/// Identifies the 24 TPC-DS tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TableId {
    CallCenter,
    CatalogPage,
    CatalogReturns,
    CatalogSales,
    Customer,
    CustomerAddress,
    CustomerDemographics,
    DateDim,
    HouseholdDemographics,
    IncomeBand,
    Inventory,
    Item,
    Promotion,
    Reason,
    ShipMode,
    Store,
    StoreReturns,
    StoreSales,
    TimeDim,
    Warehouse,
    WebPage,
    WebReturns,
    WebSales,
    WebSite,
}

impl TableId {
    /// All tables, in the alphabetical order of Table 3.6.
    pub const ALL: [TableId; 24] = [
        TableId::CallCenter,
        TableId::CatalogPage,
        TableId::CatalogReturns,
        TableId::CatalogSales,
        TableId::Customer,
        TableId::CustomerAddress,
        TableId::CustomerDemographics,
        TableId::DateDim,
        TableId::HouseholdDemographics,
        TableId::IncomeBand,
        TableId::Inventory,
        TableId::Item,
        TableId::Promotion,
        TableId::Reason,
        TableId::ShipMode,
        TableId::Store,
        TableId::StoreReturns,
        TableId::StoreSales,
        TableId::TimeDim,
        TableId::Warehouse,
        TableId::WebPage,
        TableId::WebReturns,
        TableId::WebSales,
        TableId::WebSite,
    ];

    /// The seven fact tables.
    pub const FACTS: [TableId; 7] = [
        TableId::CatalogReturns,
        TableId::CatalogSales,
        TableId::Inventory,
        TableId::StoreReturns,
        TableId::StoreSales,
        TableId::WebReturns,
        TableId::WebSales,
    ];

    /// The SQL/collection name.
    pub fn name(self) -> &'static str {
        match self {
            TableId::CallCenter => "call_center",
            TableId::CatalogPage => "catalog_page",
            TableId::CatalogReturns => "catalog_returns",
            TableId::CatalogSales => "catalog_sales",
            TableId::Customer => "customer",
            TableId::CustomerAddress => "customer_address",
            TableId::CustomerDemographics => "customer_demographics",
            TableId::DateDim => "date_dim",
            TableId::HouseholdDemographics => "household_demographics",
            TableId::IncomeBand => "income_band",
            TableId::Inventory => "inventory",
            TableId::Item => "item",
            TableId::Promotion => "promotion",
            TableId::Reason => "reason",
            TableId::ShipMode => "ship_mode",
            TableId::Store => "store",
            TableId::StoreReturns => "store_returns",
            TableId::StoreSales => "store_sales",
            TableId::TimeDim => "time_dim",
            TableId::Warehouse => "warehouse",
            TableId::WebPage => "web_page",
            TableId::WebReturns => "web_returns",
            TableId::WebSales => "web_sales",
            TableId::WebSite => "web_site",
        }
    }

    /// Parses a table name.
    pub fn from_name(name: &str) -> Option<TableId> {
        TableId::ALL.iter().copied().find(|t| t.name() == name)
    }

    /// True for the fact tables.
    pub fn is_fact(self) -> bool {
        TableId::FACTS.contains(&self)
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A foreign-key edge: `table.column → ref_table.ref_column`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignKey {
    pub table: TableId,
    pub column: &'static str,
    pub ref_table: TableId,
    pub ref_column: &'static str,
}

/// A table definition.
#[derive(Clone, Debug)]
pub struct TableDef {
    pub id: TableId,
    pub columns: Vec<Column>,
    /// Primary-key column name(s).
    pub primary_key: Vec<&'static str>,
}

impl TableDef {
    /// Column names in order.
    pub fn column_names(&self) -> Vec<&'static str> {
        self.columns.iter().map(|c| c.name).collect()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

macro_rules! cols {
    ( $( ($name:literal, $ty:ident, $null:expr) ),+ $(,)? ) => {
        vec![ $( Column { name: $name, ty: ColumnType::$ty, nullable: $null } ),+ ]
    };
}

/// Builds the definition of one table (full TPC-DS v1.1 column lists).
pub fn table_def(id: TableId) -> TableDef {
    use TableId::*;
    let (columns, primary_key): (Vec<Column>, Vec<&'static str>) = match id {
        StoreSales => (
            cols![
                ("ss_sold_date_sk", Integer, true),
                ("ss_sold_time_sk", Integer, true),
                ("ss_item_sk", Integer, false),
                ("ss_customer_sk", Integer, true),
                ("ss_cdemo_sk", Integer, true),
                ("ss_hdemo_sk", Integer, true),
                ("ss_addr_sk", Integer, true),
                ("ss_store_sk", Integer, true),
                ("ss_promo_sk", Integer, true),
                ("ss_ticket_number", Integer, false),
                ("ss_quantity", Integer, true),
                ("ss_wholesale_cost", Decimal, true),
                ("ss_list_price", Decimal, true),
                ("ss_sales_price", Decimal, true),
                ("ss_ext_discount_amt", Decimal, true),
                ("ss_ext_sales_price", Decimal, true),
                ("ss_ext_wholesale_cost", Decimal, true),
                ("ss_ext_list_price", Decimal, true),
                ("ss_ext_tax", Decimal, true),
                ("ss_coupon_amt", Decimal, true),
                ("ss_net_paid", Decimal, true),
                ("ss_net_paid_inc_tax", Decimal, true),
                ("ss_net_profit", Decimal, true),
            ],
            vec!["ss_item_sk", "ss_ticket_number"],
        ),
        StoreReturns => (
            cols![
                ("sr_returned_date_sk", Integer, true),
                ("sr_return_time_sk", Integer, true),
                ("sr_item_sk", Integer, false),
                ("sr_customer_sk", Integer, true),
                ("sr_cdemo_sk", Integer, true),
                ("sr_hdemo_sk", Integer, true),
                ("sr_addr_sk", Integer, true),
                ("sr_store_sk", Integer, true),
                ("sr_reason_sk", Integer, true),
                ("sr_ticket_number", Integer, false),
                ("sr_return_quantity", Integer, true),
                ("sr_return_amt", Decimal, true),
                ("sr_return_tax", Decimal, true),
                ("sr_return_amt_inc_tax", Decimal, true),
                ("sr_fee", Decimal, true),
                ("sr_return_ship_cost", Decimal, true),
                ("sr_refunded_cash", Decimal, true),
                ("sr_reversed_charge", Decimal, true),
                ("sr_store_credit", Decimal, true),
                ("sr_net_loss", Decimal, true),
            ],
            vec!["sr_item_sk", "sr_ticket_number"],
        ),
        Inventory => (
            cols![
                ("inv_date_sk", Integer, false),
                ("inv_item_sk", Integer, false),
                ("inv_warehouse_sk", Integer, false),
                ("inv_quantity_on_hand", Integer, true),
            ],
            vec!["inv_date_sk", "inv_item_sk", "inv_warehouse_sk"],
        ),
        CatalogSales => (
            cols![
                ("cs_sold_date_sk", Integer, true),
                ("cs_sold_time_sk", Integer, true),
                ("cs_ship_date_sk", Integer, true),
                ("cs_bill_customer_sk", Integer, true),
                ("cs_bill_cdemo_sk", Integer, true),
                ("cs_bill_hdemo_sk", Integer, true),
                ("cs_bill_addr_sk", Integer, true),
                ("cs_ship_customer_sk", Integer, true),
                ("cs_ship_cdemo_sk", Integer, true),
                ("cs_ship_hdemo_sk", Integer, true),
                ("cs_ship_addr_sk", Integer, true),
                ("cs_call_center_sk", Integer, true),
                ("cs_catalog_page_sk", Integer, true),
                ("cs_ship_mode_sk", Integer, true),
                ("cs_warehouse_sk", Integer, true),
                ("cs_item_sk", Integer, false),
                ("cs_promo_sk", Integer, true),
                ("cs_order_number", Integer, false),
                ("cs_quantity", Integer, true),
                ("cs_wholesale_cost", Decimal, true),
                ("cs_list_price", Decimal, true),
                ("cs_sales_price", Decimal, true),
                ("cs_ext_discount_amt", Decimal, true),
                ("cs_ext_sales_price", Decimal, true),
                ("cs_ext_wholesale_cost", Decimal, true),
                ("cs_ext_list_price", Decimal, true),
                ("cs_ext_tax", Decimal, true),
                ("cs_coupon_amt", Decimal, true),
                ("cs_ext_ship_cost", Decimal, true),
                ("cs_net_paid", Decimal, true),
                ("cs_net_paid_inc_tax", Decimal, true),
                ("cs_net_paid_inc_ship", Decimal, true),
                ("cs_net_paid_inc_ship_tax", Decimal, true),
                ("cs_net_profit", Decimal, true),
            ],
            vec!["cs_item_sk", "cs_order_number"],
        ),
        CatalogReturns => (
            cols![
                ("cr_returned_date_sk", Integer, true),
                ("cr_returned_time_sk", Integer, true),
                ("cr_item_sk", Integer, false),
                ("cr_refunded_customer_sk", Integer, true),
                ("cr_refunded_cdemo_sk", Integer, true),
                ("cr_refunded_hdemo_sk", Integer, true),
                ("cr_refunded_addr_sk", Integer, true),
                ("cr_returning_customer_sk", Integer, true),
                ("cr_returning_cdemo_sk", Integer, true),
                ("cr_returning_hdemo_sk", Integer, true),
                ("cr_returning_addr_sk", Integer, true),
                ("cr_call_center_sk", Integer, true),
                ("cr_catalog_page_sk", Integer, true),
                ("cr_ship_mode_sk", Integer, true),
                ("cr_warehouse_sk", Integer, true),
                ("cr_reason_sk", Integer, true),
                ("cr_order_number", Integer, false),
                ("cr_return_quantity", Integer, true),
                ("cr_return_amount", Decimal, true),
                ("cr_return_tax", Decimal, true),
                ("cr_return_amt_inc_tax", Decimal, true),
                ("cr_fee", Decimal, true),
                ("cr_return_ship_cost", Decimal, true),
                ("cr_refunded_cash", Decimal, true),
                ("cr_reversed_charge", Decimal, true),
                ("cr_store_credit", Decimal, true),
                ("cr_net_loss", Decimal, true),
            ],
            vec!["cr_item_sk", "cr_order_number"],
        ),
        WebSales => (
            cols![
                ("ws_sold_date_sk", Integer, true),
                ("ws_sold_time_sk", Integer, true),
                ("ws_ship_date_sk", Integer, true),
                ("ws_item_sk", Integer, false),
                ("ws_bill_customer_sk", Integer, true),
                ("ws_bill_cdemo_sk", Integer, true),
                ("ws_bill_hdemo_sk", Integer, true),
                ("ws_bill_addr_sk", Integer, true),
                ("ws_ship_customer_sk", Integer, true),
                ("ws_ship_cdemo_sk", Integer, true),
                ("ws_ship_hdemo_sk", Integer, true),
                ("ws_ship_addr_sk", Integer, true),
                ("ws_web_page_sk", Integer, true),
                ("ws_web_site_sk", Integer, true),
                ("ws_ship_mode_sk", Integer, true),
                ("ws_warehouse_sk", Integer, true),
                ("ws_promo_sk", Integer, true),
                ("ws_order_number", Integer, false),
                ("ws_quantity", Integer, true),
                ("ws_wholesale_cost", Decimal, true),
                ("ws_list_price", Decimal, true),
                ("ws_sales_price", Decimal, true),
                ("ws_ext_discount_amt", Decimal, true),
                ("ws_ext_sales_price", Decimal, true),
                ("ws_ext_wholesale_cost", Decimal, true),
                ("ws_ext_list_price", Decimal, true),
                ("ws_ext_tax", Decimal, true),
                ("ws_coupon_amt", Decimal, true),
                ("ws_ext_ship_cost", Decimal, true),
                ("ws_net_paid", Decimal, true),
                ("ws_net_paid_inc_tax", Decimal, true),
                ("ws_net_paid_inc_ship", Decimal, true),
                ("ws_net_paid_inc_ship_tax", Decimal, true),
                ("ws_net_profit", Decimal, true),
            ],
            vec!["ws_item_sk", "ws_order_number"],
        ),
        WebReturns => (
            cols![
                ("wr_returned_date_sk", Integer, true),
                ("wr_returned_time_sk", Integer, true),
                ("wr_item_sk", Integer, false),
                ("wr_refunded_customer_sk", Integer, true),
                ("wr_refunded_cdemo_sk", Integer, true),
                ("wr_refunded_hdemo_sk", Integer, true),
                ("wr_refunded_addr_sk", Integer, true),
                ("wr_returning_customer_sk", Integer, true),
                ("wr_returning_cdemo_sk", Integer, true),
                ("wr_returning_hdemo_sk", Integer, true),
                ("wr_returning_addr_sk", Integer, true),
                ("wr_web_page_sk", Integer, true),
                ("wr_reason_sk", Integer, true),
                ("wr_order_number", Integer, false),
                ("wr_return_quantity", Integer, true),
                ("wr_return_amt", Decimal, true),
                ("wr_return_tax", Decimal, true),
                ("wr_return_amt_inc_tax", Decimal, true),
                ("wr_fee", Decimal, true),
                ("wr_return_ship_cost", Decimal, true),
                ("wr_refunded_cash", Decimal, true),
                ("wr_reversed_charge", Decimal, true),
                ("wr_account_credit", Decimal, true),
                ("wr_net_loss", Decimal, true),
            ],
            vec!["wr_item_sk", "wr_order_number"],
        ),
        DateDim => (
            cols![
                ("d_date_sk", Integer, false),
                ("d_date_id", Char, false),
                ("d_date", Date, true),
                ("d_month_seq", Integer, true),
                ("d_week_seq", Integer, true),
                ("d_quarter_seq", Integer, true),
                ("d_year", Integer, true),
                ("d_dow", Integer, true),
                ("d_moy", Integer, true),
                ("d_dom", Integer, true),
                ("d_qoy", Integer, true),
                ("d_fy_year", Integer, true),
                ("d_fy_quarter_seq", Integer, true),
                ("d_fy_week_seq", Integer, true),
                ("d_day_name", Char, true),
                ("d_quarter_name", Char, true),
                ("d_holiday", Char, true),
                ("d_weekend", Char, true),
                ("d_following_holiday", Char, true),
                ("d_first_dom", Integer, true),
                ("d_last_dom", Integer, true),
                ("d_same_day_ly", Integer, true),
                ("d_same_day_lq", Integer, true),
                ("d_current_day", Char, true),
                ("d_current_week", Char, true),
                ("d_current_month", Char, true),
                ("d_current_quarter", Char, true),
                ("d_current_year", Char, true),
            ],
            vec!["d_date_sk"],
        ),
        TimeDim => (
            cols![
                ("t_time_sk", Integer, false),
                ("t_time_id", Char, false),
                ("t_time", Integer, true),
                ("t_hour", Integer, true),
                ("t_minute", Integer, true),
                ("t_second", Integer, true),
                ("t_am_pm", Char, true),
                ("t_shift", Char, true),
                ("t_sub_shift", Char, true),
                ("t_meal_time", Char, true),
            ],
            vec!["t_time_sk"],
        ),
        Item => (
            cols![
                ("i_item_sk", Integer, false),
                ("i_item_id", Char, false),
                ("i_rec_start_date", Date, true),
                ("i_rec_end_date", Date, true),
                ("i_item_desc", Char, true),
                ("i_current_price", Decimal, true),
                ("i_wholesale_cost", Decimal, true),
                ("i_brand_id", Integer, true),
                ("i_brand", Char, true),
                ("i_class_id", Integer, true),
                ("i_class", Char, true),
                ("i_category_id", Integer, true),
                ("i_category", Char, true),
                ("i_manufact_id", Integer, true),
                ("i_manufact", Char, true),
                ("i_size", Char, true),
                ("i_formulation", Char, true),
                ("i_color", Char, true),
                ("i_units", Char, true),
                ("i_container", Char, true),
                ("i_manager_id", Integer, true),
                ("i_product_name", Char, true),
            ],
            vec!["i_item_sk"],
        ),
        Customer => (
            cols![
                ("c_customer_sk", Integer, false),
                ("c_customer_id", Char, false),
                ("c_current_cdemo_sk", Integer, true),
                ("c_current_hdemo_sk", Integer, true),
                ("c_current_addr_sk", Integer, true),
                ("c_first_shipto_date_sk", Integer, true),
                ("c_first_sales_date_sk", Integer, true),
                ("c_salutation", Char, true),
                ("c_first_name", Char, true),
                ("c_last_name", Char, true),
                ("c_preferred_cust_flag", Char, true),
                ("c_birth_day", Integer, true),
                ("c_birth_month", Integer, true),
                ("c_birth_year", Integer, true),
                ("c_birth_country", Char, true),
                ("c_login", Char, true),
                ("c_email_address", Char, true),
                ("c_last_review_date_sk", Integer, true),
            ],
            vec!["c_customer_sk"],
        ),
        CustomerAddress => (
            cols![
                ("ca_address_sk", Integer, false),
                ("ca_address_id", Char, false),
                ("ca_street_number", Char, true),
                ("ca_street_name", Char, true),
                ("ca_street_type", Char, true),
                ("ca_suite_number", Char, true),
                ("ca_city", Char, true),
                ("ca_county", Char, true),
                ("ca_state", Char, true),
                ("ca_zip", Char, true),
                ("ca_country", Char, true),
                ("ca_gmt_offset", Decimal, true),
                ("ca_location_type", Char, true),
            ],
            vec!["ca_address_sk"],
        ),
        CustomerDemographics => (
            cols![
                ("cd_demo_sk", Integer, false),
                ("cd_gender", Char, true),
                ("cd_marital_status", Char, true),
                ("cd_education_status", Char, true),
                ("cd_purchase_estimate", Integer, true),
                ("cd_credit_rating", Char, true),
                ("cd_dep_count", Integer, true),
                ("cd_dep_employed_count", Integer, true),
                ("cd_dep_college_count", Integer, true),
            ],
            vec!["cd_demo_sk"],
        ),
        HouseholdDemographics => (
            cols![
                ("hd_demo_sk", Integer, false),
                ("hd_income_band_sk", Integer, true),
                ("hd_buy_potential", Char, true),
                ("hd_dep_count", Integer, true),
                ("hd_vehicle_count", Integer, true),
            ],
            vec!["hd_demo_sk"],
        ),
        IncomeBand => (
            cols![
                ("ib_income_band_sk", Integer, false),
                ("ib_lower_bound", Integer, true),
                ("ib_upper_bound", Integer, true),
            ],
            vec!["ib_income_band_sk"],
        ),
        Promotion => (
            cols![
                ("p_promo_sk", Integer, false),
                ("p_promo_id", Char, false),
                ("p_start_date_sk", Integer, true),
                ("p_end_date_sk", Integer, true),
                ("p_item_sk", Integer, true),
                ("p_cost", Decimal, true),
                ("p_response_target", Integer, true),
                ("p_promo_name", Char, true),
                ("p_channel_dmail", Char, true),
                ("p_channel_email", Char, true),
                ("p_channel_catalog", Char, true),
                ("p_channel_tv", Char, true),
                ("p_channel_radio", Char, true),
                ("p_channel_press", Char, true),
                ("p_channel_event", Char, true),
                ("p_channel_demo", Char, true),
                ("p_channel_details", Char, true),
                ("p_purpose", Char, true),
                ("p_discount_active", Char, true),
            ],
            vec!["p_promo_sk"],
        ),
        Reason => (
            cols![
                ("r_reason_sk", Integer, false),
                ("r_reason_id", Char, false),
                ("r_reason_desc", Char, true),
            ],
            vec!["r_reason_sk"],
        ),
        ShipMode => (
            cols![
                ("sm_ship_mode_sk", Integer, false),
                ("sm_ship_mode_id", Char, false),
                ("sm_type", Char, true),
                ("sm_code", Char, true),
                ("sm_carrier", Char, true),
                ("sm_contract", Char, true),
            ],
            vec!["sm_ship_mode_sk"],
        ),
        Store => (
            cols![
                ("s_store_sk", Integer, false),
                ("s_store_id", Char, false),
                ("s_rec_start_date", Date, true),
                ("s_rec_end_date", Date, true),
                ("s_closed_date_sk", Integer, true),
                ("s_store_name", Char, true),
                ("s_number_employees", Integer, true),
                ("s_floor_space", Integer, true),
                ("s_hours", Char, true),
                ("s_manager", Char, true),
                ("s_market_id", Integer, true),
                ("s_geography_class", Char, true),
                ("s_market_desc", Char, true),
                ("s_market_manager", Char, true),
                ("s_division_id", Integer, true),
                ("s_division_name", Char, true),
                ("s_company_id", Integer, true),
                ("s_company_name", Char, true),
                ("s_street_number", Char, true),
                ("s_street_name", Char, true),
                ("s_street_type", Char, true),
                ("s_suite_number", Char, true),
                ("s_city", Char, true),
                ("s_county", Char, true),
                ("s_state", Char, true),
                ("s_zip", Char, true),
                ("s_country", Char, true),
                ("s_gmt_offset", Decimal, true),
                ("s_tax_precentage", Decimal, true),
            ],
            vec!["s_store_sk"],
        ),
        Warehouse => (
            cols![
                ("w_warehouse_sk", Integer, false),
                ("w_warehouse_id", Char, false),
                ("w_warehouse_name", Char, true),
                ("w_warehouse_sq_ft", Integer, true),
                ("w_street_number", Char, true),
                ("w_street_name", Char, true),
                ("w_street_type", Char, true),
                ("w_suite_number", Char, true),
                ("w_city", Char, true),
                ("w_county", Char, true),
                ("w_state", Char, true),
                ("w_zip", Char, true),
                ("w_country", Char, true),
                ("w_gmt_offset", Decimal, true),
            ],
            vec!["w_warehouse_sk"],
        ),
        CallCenter => (
            cols![
                ("cc_call_center_sk", Integer, false),
                ("cc_call_center_id", Char, false),
                ("cc_rec_start_date", Date, true),
                ("cc_rec_end_date", Date, true),
                ("cc_closed_date_sk", Integer, true),
                ("cc_open_date_sk", Integer, true),
                ("cc_name", Char, true),
                ("cc_class", Char, true),
                ("cc_employees", Integer, true),
                ("cc_sq_ft", Integer, true),
                ("cc_hours", Char, true),
                ("cc_manager", Char, true),
                ("cc_mkt_id", Integer, true),
                ("cc_mkt_class", Char, true),
                ("cc_mkt_desc", Char, true),
                ("cc_market_manager", Char, true),
                ("cc_division", Integer, true),
                ("cc_division_name", Char, true),
                ("cc_company", Integer, true),
                ("cc_company_name", Char, true),
                ("cc_street_number", Char, true),
                ("cc_street_name", Char, true),
                ("cc_street_type", Char, true),
                ("cc_suite_number", Char, true),
                ("cc_city", Char, true),
                ("cc_county", Char, true),
                ("cc_state", Char, true),
                ("cc_zip", Char, true),
                ("cc_country", Char, true),
                ("cc_gmt_offset", Decimal, true),
                ("cc_tax_percentage", Decimal, true),
            ],
            vec!["cc_call_center_sk"],
        ),
        CatalogPage => (
            cols![
                ("cp_catalog_page_sk", Integer, false),
                ("cp_catalog_page_id", Char, false),
                ("cp_start_date_sk", Integer, true),
                ("cp_end_date_sk", Integer, true),
                ("cp_department", Char, true),
                ("cp_catalog_number", Integer, true),
                ("cp_catalog_page_number", Integer, true),
                ("cp_description", Char, true),
                ("cp_type", Char, true),
            ],
            vec!["cp_catalog_page_sk"],
        ),
        WebPage => (
            cols![
                ("wp_web_page_sk", Integer, false),
                ("wp_web_page_id", Char, false),
                ("wp_rec_start_date", Date, true),
                ("wp_rec_end_date", Date, true),
                ("wp_creation_date_sk", Integer, true),
                ("wp_access_date_sk", Integer, true),
                ("wp_autogen_flag", Char, true),
                ("wp_customer_sk", Integer, true),
                ("wp_url", Char, true),
                ("wp_type", Char, true),
                ("wp_char_count", Integer, true),
                ("wp_link_count", Integer, true),
                ("wp_image_count", Integer, true),
                ("wp_max_ad_count", Integer, true),
            ],
            vec!["wp_web_page_sk"],
        ),
        WebSite => (
            cols![
                ("web_site_sk", Integer, false),
                ("web_site_id", Char, false),
                ("web_rec_start_date", Date, true),
                ("web_rec_end_date", Date, true),
                ("web_name", Char, true),
                ("web_open_date_sk", Integer, true),
                ("web_close_date_sk", Integer, true),
                ("web_class", Char, true),
                ("web_manager", Char, true),
                ("web_mkt_id", Integer, true),
                ("web_mkt_class", Char, true),
                ("web_mkt_desc", Char, true),
                ("web_market_manager", Char, true),
                ("web_company_id", Integer, true),
                ("web_company_name", Char, true),
                ("web_street_number", Char, true),
                ("web_street_name", Char, true),
                ("web_street_type", Char, true),
                ("web_suite_number", Char, true),
                ("web_city", Char, true),
                ("web_county", Char, true),
                ("web_state", Char, true),
                ("web_zip", Char, true),
                ("web_country", Char, true),
                ("web_gmt_offset", Decimal, true),
                ("web_tax_percentage", Decimal, true),
            ],
            vec!["web_site_sk"],
        ),
    };
    TableDef { id, columns, primary_key }
}

/// The foreign keys the thesis's queries traverse (store-channel facts and
/// inventory; Figures 3.2–3.4), plus the dimension-to-dimension edges.
pub fn foreign_keys() -> Vec<ForeignKey> {
    use TableId::*;
    let fk = |table: TableId, column: &'static str, ref_table: TableId, ref_column: &'static str| {
        ForeignKey { table, column, ref_table, ref_column }
    };
    vec![
        // store_sales → dimensions (Fig 3.2)
        fk(StoreSales, "ss_sold_date_sk", DateDim, "d_date_sk"),
        fk(StoreSales, "ss_sold_time_sk", TimeDim, "t_time_sk"),
        fk(StoreSales, "ss_item_sk", Item, "i_item_sk"),
        fk(StoreSales, "ss_customer_sk", Customer, "c_customer_sk"),
        fk(StoreSales, "ss_cdemo_sk", CustomerDemographics, "cd_demo_sk"),
        fk(StoreSales, "ss_hdemo_sk", HouseholdDemographics, "hd_demo_sk"),
        fk(StoreSales, "ss_addr_sk", CustomerAddress, "ca_address_sk"),
        fk(StoreSales, "ss_store_sk", Store, "s_store_sk"),
        fk(StoreSales, "ss_promo_sk", Promotion, "p_promo_sk"),
        // store_returns → dimensions (Fig 3.3)
        fk(StoreReturns, "sr_returned_date_sk", DateDim, "d_date_sk"),
        fk(StoreReturns, "sr_return_time_sk", TimeDim, "t_time_sk"),
        fk(StoreReturns, "sr_item_sk", Item, "i_item_sk"),
        fk(StoreReturns, "sr_customer_sk", Customer, "c_customer_sk"),
        fk(StoreReturns, "sr_cdemo_sk", CustomerDemographics, "cd_demo_sk"),
        fk(StoreReturns, "sr_hdemo_sk", HouseholdDemographics, "hd_demo_sk"),
        fk(StoreReturns, "sr_addr_sk", CustomerAddress, "ca_address_sk"),
        fk(StoreReturns, "sr_store_sk", Store, "s_store_sk"),
        fk(StoreReturns, "sr_reason_sk", Reason, "r_reason_sk"),
        // inventory → dimensions (Fig 3.4)
        fk(Inventory, "inv_date_sk", DateDim, "d_date_sk"),
        fk(Inventory, "inv_item_sk", Item, "i_item_sk"),
        fk(Inventory, "inv_warehouse_sk", Warehouse, "w_warehouse_sk"),
        // dimension → dimension
        fk(Customer, "c_current_cdemo_sk", CustomerDemographics, "cd_demo_sk"),
        fk(Customer, "c_current_hdemo_sk", HouseholdDemographics, "hd_demo_sk"),
        fk(Customer, "c_current_addr_sk", CustomerAddress, "ca_address_sk"),
        fk(HouseholdDemographics, "hd_income_band_sk", IncomeBand, "ib_income_band_sk"),
        fk(Promotion, "p_item_sk", Item, "i_item_sk"),
    ]
}

/// Foreign keys leaving one table.
pub fn foreign_keys_of(table: TableId) -> Vec<ForeignKey> {
    foreign_keys().into_iter().filter(|f| f.table == table).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_tables_seven_facts() {
        assert_eq!(TableId::ALL.len(), 24);
        assert_eq!(TableId::FACTS.len(), 7);
        assert!(TableId::StoreSales.is_fact());
        assert!(!TableId::DateDim.is_fact());
    }

    #[test]
    fn names_roundtrip() {
        for t in TableId::ALL {
            assert_eq!(TableId::from_name(t.name()), Some(t));
        }
        assert_eq!(TableId::from_name("nope"), None);
    }

    #[test]
    fn all_defs_have_valid_primary_keys() {
        for t in TableId::ALL {
            let def = table_def(t);
            assert!(!def.columns.is_empty(), "{t}");
            assert!(!def.primary_key.is_empty(), "{t}");
            for pk in &def.primary_key {
                let idx = def.column_index(pk).unwrap_or_else(|| panic!("{t}.{pk} missing"));
                assert!(!def.columns[idx].nullable, "{t}.{pk} must be NOT NULL");
            }
        }
    }

    #[test]
    fn column_counts_match_tpcds() {
        let expect = [
            (TableId::StoreSales, 23),
            (TableId::StoreReturns, 20),
            (TableId::Inventory, 4),
            (TableId::CatalogSales, 34),
            (TableId::CatalogReturns, 27),
            (TableId::WebSales, 34),
            (TableId::WebReturns, 24),
            (TableId::DateDim, 28),
            (TableId::TimeDim, 10),
            (TableId::Item, 22),
            (TableId::Customer, 18),
            (TableId::CustomerAddress, 13),
            (TableId::CustomerDemographics, 9),
            (TableId::HouseholdDemographics, 5),
            (TableId::IncomeBand, 3),
            (TableId::Promotion, 19),
            (TableId::Reason, 3),
            (TableId::ShipMode, 6),
            (TableId::Store, 29),
            (TableId::Warehouse, 14),
            (TableId::CallCenter, 31),
            (TableId::CatalogPage, 9),
            (TableId::WebPage, 14),
            (TableId::WebSite, 26),
        ];
        for (t, n) in expect {
            assert_eq!(table_def(t).columns.len(), n, "{t}");
        }
    }

    #[test]
    fn foreign_keys_reference_real_columns() {
        for fk in foreign_keys() {
            let t = table_def(fk.table);
            let r = table_def(fk.ref_table);
            assert!(t.column_index(fk.column).is_some(), "{fk:?}");
            assert!(r.column_index(fk.ref_column).is_some(), "{fk:?}");
            assert!(r.primary_key.contains(&fk.ref_column), "{fk:?} must hit a PK column");
        }
    }

    #[test]
    fn query_tables_expose_expected_fk_fanout() {
        // Q7/Q46 traverse store_sales; Q21 inventory; Q50 store_returns.
        assert_eq!(foreign_keys_of(TableId::StoreSales).len(), 9);
        assert_eq!(foreign_keys_of(TableId::Inventory).len(), 3);
        assert_eq!(foreign_keys_of(TableId::StoreReturns).len(), 9);
    }
}
