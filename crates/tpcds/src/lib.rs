//! # doclite-tpcds
//!
//! The TPC-DS substrate of the reproduction: the full 24-table retail
//! snowflake schema with its PK/FK catalog, a deterministic seeded data
//! generator whose row counts reproduce thesis Table 3.6 at SF1/SF5 and
//! scale continuously elsewhere, pipe-delimited `.dat` file IO (the
//! dsdgen output format the migration algorithm consumes), calendar
//! utilities for the `d_date_sk` surrogate-key convention, and the
//! four-query workload catalog (Q7, Q21, Q46, Q50) with per-scale
//! parameters and SQL text.

pub mod counts;
pub mod dat;
pub mod dates;
pub mod gen;
pub mod queries;
pub mod schema;
pub mod text;

pub use counts::{row_count, INVENTORY_WEEKS, TABLE_3_6};
pub use dat::{dat_path, write_all, write_table, DatReader};
pub use dates::{Date, DATE_SK_EPOCH};
pub use gen::{Cell, Generator};
pub use queries::{sql_text, QueryId, QueryParams};
pub use schema::{foreign_keys, foreign_keys_of, table_def, ColumnType, ForeignKey, TableDef, TableId};
