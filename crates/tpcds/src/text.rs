//! String pools for realistic-looking synthetic values ("veracity" in the
//! 4V categorization of thesis Table 2.3): names, streets, cities — the
//! pools include every literal the four workload queries predicate on
//! (`'Midway'`, `'Fairview'`, `'4 yr Degree'`, channel flags, …).

pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda", "William",
    "Elizabeth", "David", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah",
    "Charles", "Karen", "Earl", "Nancy", "Steven", "Lisa", "Paul", "Betty", "Andrew", "Helen",
    "Joshua", "Sandra", "Kenneth", "Donna", "Kevin", "Carol", "Brian", "Ruth", "George", "Sharon",
    "Edward", "Michelle",
];

pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Garrison", "Lee", "Perez", "Thompson", "White", "Harris",
    "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill",
];

/// `s_city` draws from here; the thesis's Query 46 predicates on Midway
/// and Fairview, which dsdgen makes disproportionately common — the pool
/// repeats them to bias selection the same way.
pub const CITIES: &[&str] = &[
    "Midway", "Fairview", "Midway", "Fairview", "Oak Grove", "Five Points", "Pleasant Hill",
    "Centerville", "Riverside", "Salem", "Georgetown", "Greenville", "Franklin", "Springfield",
    "Clinton", "Marion", "Union", "Liberty", "Kingston", "Ashland",
];

pub const STREET_NAMES: &[&str] = &[
    "Jackson", "Washington", "Main", "Park", "Oak", "Maple", "Cedar", "Elm", "View", "Lake",
    "Hill", "Pine", "Spring", "Ridge", "Church", "Willow", "Mill", "River", "Sunset", "Railroad",
];

pub const STREET_TYPES: &[&str] = &[
    "Street", "Avenue", "Boulevard", "Parkway", "Road", "Lane", "Drive", "Court", "Circle", "Way",
];

pub const STATES: &[&str] = &[
    "AL", "CA", "CO", "FL", "GA", "IL", "IN", "KS", "KY", "LA", "MI", "MN", "MO", "NC", "NY",
    "OH", "OK", "OR", "PA", "TN", "TX", "VA", "WA", "WI",
];

pub const COUNTIES: &[&str] = &[
    "Williamson County", "Walker County", "Ziebach County", "Richland County", "Bronx County",
    "Franklin Parish", "Luce County", "Huron County", "Mobile County", "Maverick County",
];

/// `cd_gender` values.
pub const GENDERS: &[&str] = &["M", "F"];

/// `cd_marital_status` values.
pub const MARITAL_STATUS: &[&str] = &["M", "S", "D", "W", "U"];

/// `cd_education_status` values — includes Query 7's `'4 yr Degree'`.
pub const EDUCATION: &[&str] = &[
    "Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree", "Advanced Degree", "Unknown",
];

pub const CREDIT_RATING: &[&str] = &["Low Risk", "Good", "High Risk", "Unknown"];

pub const BUY_POTENTIAL: &[&str] =
    &[">10000", "5001-10000", "1001-5000", "501-1000", "0-500", "Unknown"];

pub const ITEM_CATEGORIES: &[&str] = &[
    "Books", "Children", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports",
    "Women",
];

pub const ITEM_CLASSES: &[&str] = &[
    "accessories", "archery", "athletic", "baseball", "basketball", "bedding", "camcorders",
    "camping", "classical", "computers", "country", "decor", "dresses", "fiction", "fishing",
    "football", "fragrances", "furniture", "glassware", "golf",
];

pub const COLORS: &[&str] = &[
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue",
    "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate", "coral",
    "cornflower", "cornsilk", "cream",
];

pub const UNITS: &[&str] =
    &["Each", "Dozen", "Case", "Pallet", "Gross", "Box", "Bunch", "Carton", "Dram", "Ounce"];

pub const CONTAINERS: &[&str] = &["Unknown"];

pub const SHIFTS: &[&str] = &["first", "second", "third"];

pub const MEAL_TIMES: &[&str] = &["breakfast", "lunch", "dinner"];

pub const SHIP_MODE_TYPES: &[&str] =
    &["EXPRESS", "NEXT DAY", "OVERNIGHT", "REGULAR", "TWO DAY", "LIBRARY"];

pub const SHIP_MODE_CODES: &[&str] = &["AIR", "SURFACE", "SEA"];

pub const CARRIERS: &[&str] = &[
    "UPS", "FEDEX", "AIRBORNE", "USPS", "DHL", "TBS", "ZHOU", "ZOUROS", "MSC", "LATVIAN",
    "ALLIANCE", "ORIENTAL", "BARIAN", "BOXBUNDLES", "CARDINAL", "DIAMOND", "RUPEKSA", "GERMA",
    "HARMSTORF", "GREAT EASTERN",
];

pub const REASONS: &[&str] = &[
    "Package was damaged", "Stopped working", "Did not fit", "Found a better price in a store",
    "Not the product that was ordered", "Parts missing", "Does not work with a product that I have",
    "Gift exchange", "Did not like the color", "Did not like the model", "Did not like the make",
    "Did not like the warranty", "No service location in my area", "Lost my job",
    "Found a better extended warranty", "Wrong size", "Duplicate purchase", "Not working any more",
    "Ordered twice by mistake", "Changed my mind",
];

pub const PROMO_PURPOSES: &[&str] = &["Unknown"];

pub const STORE_NAMES: &[&str] = &["ought", "able", "pri", "ese", "anti", "cally", "ation", "eing"];

pub const WAREHOUSE_NAMES: &[&str] = &[
    "Conventional childr", "Important issues liv", "Doors canno", "Bad cards must make.",
    "Rooms cook ", "Operations can hang in", "Stars get partly involved",
];

pub const DAY_NAMES: &[&str] =
    &["Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"];

/// Deterministically picks from a pool by index.
pub fn pick(pool: &'static [&'static str], idx: u64) -> &'static str {
    // SAFETY of 'static: all pools above are &'static str literals.
    pool[(idx % pool.len() as u64) as usize]
}

/// A TPC-DS style 16-character business key, e.g. `AAAAAAAABAAAAAAA`:
/// base-26 little-endian encoding of the row number over 'A'..'Z'.
pub fn business_key(mut n: u64) -> String {
    let mut chars = [b'A'; 16];
    let mut i = 0;
    while n > 0 && i < 16 {
        chars[15 - i] = b'A' + (n % 26) as u8;
        n /= 26;
        i += 1;
    }
    chars.reverse();
    String::from_utf8(chars.to_vec()).expect("ASCII")
}

/// Lorem-style description text of bounded length, deterministic in `idx`.
pub fn description(idx: u64, max_words: usize) -> String {
    const WORDS: &[&str] = &[
        "special", "sometimes", "national", "important", "current", "general", "available",
        "different", "large", "early", "political", "economic", "public", "certain", "major",
        "similar", "recent", "concerned", "everyday", "necessary",
    ];
    let n = 3 + (idx as usize % max_words.max(1));
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[((idx.wrapping_mul(31).wrapping_add(i as u64 * 7)) as usize) % WORDS.len()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_literals_are_in_pools() {
        assert!(CITIES.contains(&"Midway"));
        assert!(CITIES.contains(&"Fairview"));
        assert!(EDUCATION.contains(&"4 yr Degree"));
        assert!(GENDERS.contains(&"M"));
        assert!(MARITAL_STATUS.contains(&"M"));
    }

    #[test]
    fn pick_is_total_and_deterministic() {
        assert_eq!(pick(CITIES, 0), pick(CITIES, 0));
        for i in 0..100 {
            let _ = pick(STATES, i); // never panics
        }
    }

    #[test]
    fn business_keys_are_unique_fixed_width() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..10_000 {
            let k = business_key(n);
            assert_eq!(k.len(), 16);
            assert!(seen.insert(k));
        }
        assert_eq!(business_key(0), "AAAAAAAAAAAAAAAA");
        assert_eq!(business_key(1), "BAAAAAAAAAAAAAAA");
    }

    #[test]
    fn descriptions_bounded() {
        for idx in 0..50 {
            let d = description(idx, 10);
            let words = d.split(' ').count();
            assert!((3..=12).contains(&words));
        }
    }
}
