//! The deterministic, seeded data generator (the reproduction's `dsdgen`).
//!
//! Every row is generated independently from a per-row RNG seeded by
//! `(generator seed, table, row index)`, so generation is reproducible,
//! random-access (a `store_returns` row can re-derive the `store_sales`
//! line it returns without storing anything), and streamable.
//!
//! Distribution choices are documented inline; each exists to make the
//! four workload queries select plausible fractions of data:
//!
//! * sales dates are uniform over 1998-01-01..2002-12-31 (Q7's
//!   `d_year = 2001` selects ~20%, Q46's weekend days of 1998–2000 select
//!   ~17% of 60%);
//! * `customer_demographics` is the positional cross-product dsdgen uses,
//!   so Q7's `(M, M, 4 yr Degree)` filter selects exactly 1/70 of it;
//! * `household_demographics` is likewise positional: `hd_dep_count = 2`
//!   or `hd_vehicle_count = 3` selects 1/10 + 1/6 − 1/60;
//! * `store_returns` rows reference real `store_sales` lines and return
//!   1–130 days after the sale, giving Q50's day-range buckets mass;
//! * inventory snapshots are weekly over the same five years, so Q21's
//!   ±30-day window around 2002-05-29 captures ~9 weeks.

use crate::counts::{row_count, INVENTORY_WEEKS};
use crate::dates::Date;
use crate::schema::{table_def, TableId};
use crate::text;
use doclite_bson::{Document, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One generated column value.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    Null,
    Int(i64),
    Dec(f64),
    Str(String),
}

impl Cell {
    /// Renders the `.dat` field text (empty string for NULL, as dsdgen).
    pub fn to_dat_field(&self) -> String {
        match self {
            Cell::Null => String::new(),
            Cell::Int(i) => i.to_string(),
            Cell::Dec(d) => format!("{d:.2}"),
            Cell::Str(s) => s.clone(),
        }
    }

    /// Converts to a document value (used when bypassing `.dat` files).
    pub fn to_value(&self) -> Value {
        match self {
            Cell::Null => Value::Null,
            Cell::Int(i) => Value::Int64(*i),
            Cell::Dec(d) => Value::Double(*d),
            Cell::Str(s) => Value::String(s.clone()),
        }
    }

    fn str(s: impl Into<String>) -> Cell {
        Cell::Str(s.into())
    }

    fn dec2(d: f64) -> Cell {
        Cell::Dec((d * 100.0).round() / 100.0)
    }
}

/// First calendar day with sales activity.
pub const SALES_START: Date = Date { year: 1998, month: 1, day: 1 };
/// Number of selling days (1998-01-01 ..= 2002-12-31).
pub const SALES_DAYS: i64 = 1826;
/// First weekly inventory snapshot.
pub const INVENTORY_START: Date = Date { year: 1998, month: 1, day: 6 };
/// Average sale lines per register ticket.
pub const LINES_PER_TICKET: u64 = 12;
/// Average lines per catalog/web order.
pub const LINES_PER_ORDER: u64 = 8;
/// Probability that a nullable foreign key is NULL.
const NULL_PROB: f64 = 0.02;

/// The seeded generator for one dataset.
#[derive(Clone, Copy, Debug)]
pub struct Generator {
    sf: f64,
    seed: u64,
}

impl Generator {
    /// A generator at a scale factor with the default seed.
    pub fn new(sf: f64) -> Self {
        Self::with_seed(sf, 0x7C05_D5EE_D5EE_D00C)
    }

    /// A generator with an explicit seed.
    pub fn with_seed(sf: f64, seed: u64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        Generator { sf, seed }
    }

    /// The scale factor.
    pub fn scale_factor(&self) -> f64 {
        self.sf
    }

    /// Rows this generator produces for a table.
    pub fn row_count(&self, table: TableId) -> u64 {
        row_count(table, self.sf)
    }

    fn rng(&self, table: TableId, stream: u64, idx: u64) -> SmallRng {
        // splitmix-style mixing of (seed, table, stream, idx).
        let mut z = self
            .seed
            .wrapping_add((table as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(idx.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SmallRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Generates row `idx` (0-based) of a table.
    pub fn row(&self, table: TableId, idx: u64) -> Vec<Cell> {
        assert!(idx < self.row_count(table), "row {idx} out of range for {table}");
        match table {
            TableId::StoreSales => self.store_sales_row(idx),
            TableId::StoreReturns => self.store_returns_row(idx),
            TableId::Inventory => self.inventory_row(idx),
            TableId::CatalogSales => self.catalog_sales_row(idx),
            TableId::CatalogReturns => self.catalog_returns_row(idx),
            TableId::WebSales => self.web_sales_row(idx),
            TableId::WebReturns => self.web_returns_row(idx),
            TableId::DateDim => self.date_dim_row(idx),
            TableId::TimeDim => self.time_dim_row(idx),
            TableId::Item => self.item_row(idx),
            TableId::Customer => self.customer_row(idx),
            TableId::CustomerAddress => self.customer_address_row(idx),
            TableId::CustomerDemographics => customer_demographics_row(idx),
            TableId::HouseholdDemographics => household_demographics_row(idx),
            TableId::IncomeBand => income_band_row(idx),
            TableId::Promotion => self.promotion_row(idx),
            TableId::Reason => reason_row(idx),
            TableId::ShipMode => ship_mode_row(idx),
            TableId::Store => self.store_row(idx),
            TableId::Warehouse => self.warehouse_row(idx),
            TableId::CallCenter => self.call_center_row(idx),
            TableId::CatalogPage => self.catalog_page_row(idx),
            TableId::WebPage => self.web_page_row(idx),
            TableId::WebSite => self.web_site_row(idx),
        }
    }

    /// Streams all rows of a table.
    pub fn rows(&self, table: TableId) -> impl Iterator<Item = Vec<Cell>> + '_ {
        (0..self.row_count(table)).map(move |i| self.row(table, i))
    }

    /// Generates row `idx` directly as a document (column names as keys,
    /// NULL columns omitted — the migration algorithm's convention).
    pub fn document(&self, table: TableId, idx: u64) -> Document {
        let def = table_def(table);
        let cells = self.row(table, idx);
        let mut doc = Document::with_capacity(cells.len());
        for (col, cell) in def.columns.iter().zip(cells) {
            if cell != Cell::Null {
                doc.set(col.name, cell.to_value());
            }
        }
        doc
    }

    /// Streams all documents of a table.
    pub fn documents(&self, table: TableId) -> impl Iterator<Item = Document> + '_ {
        (0..self.row_count(table)).map(move |i| self.document(table, i))
    }

    // ----- shared derivations ------------------------------------------

    fn maybe_null(&self, rng: &mut SmallRng, cell: Cell) -> Cell {
        if rng.random::<f64>() < NULL_PROB {
            Cell::Null
        } else {
            cell
        }
    }

    fn sales_date(&self, rng: &mut SmallRng) -> Date {
        SALES_START.plus_days(rng.random_range(0..SALES_DAYS))
    }

    fn fk(&self, rng: &mut SmallRng, table: TableId) -> i64 {
        rng.random_range(1..=self.row_count(table) as i64)
    }

    fn null_fk(&self, rng: &mut SmallRng, table: TableId) -> Cell {
        let v = self.fk(rng, table);
        self.maybe_null(rng, Cell::Int(v))
    }

    /// A nullable reference into time_dim.
    fn null_time(&self, rng: &mut SmallRng) -> Cell {
        let v = rng.random_range(0..self.row_count(TableId::TimeDim) as i64);
        self.maybe_null(rng, Cell::Int(v))
    }

    /// The per-ticket attributes shared by all lines of one store-sales
    /// ticket: (sold_date, customer, cdemo, hdemo, addr, store).
    fn ticket_attrs(&self, ticket: u64) -> (Date, i64, i64, i64, i64, i64) {
        let mut rng = self.rng(TableId::StoreSales, 1, ticket);
        let date = self.sales_date(&mut rng);
        let customer = self.fk(&mut rng, TableId::Customer);
        let cdemo = self.fk(&mut rng, TableId::CustomerDemographics);
        let hdemo = self.fk(&mut rng, TableId::HouseholdDemographics);
        let addr = self.fk(&mut rng, TableId::CustomerAddress);
        let store = self.fk(&mut rng, TableId::Store);
        (date, customer, cdemo, hdemo, addr, store)
    }

    // ----- fact tables --------------------------------------------------

    fn store_sales_row(&self, idx: u64) -> Vec<Cell> {
        let ticket = idx / LINES_PER_TICKET + 1;
        let (date, customer, cdemo, hdemo, addr, store) = self.ticket_attrs(ticket);
        let mut rng = self.rng(TableId::StoreSales, 0, idx);

        let item = self.fk(&mut rng, TableId::Item);
        let promo = self.fk(&mut rng, TableId::Promotion);
        let time_sk = rng.random_range(0..self.row_count(TableId::TimeDim) as i64);
        let quantity = rng.random_range(1..=100i64);
        let wholesale = rng.random_range(1.00..=100.0f64);
        let list = wholesale * rng.random_range(1.0..=2.0f64);
        let discount = rng.random_range(0.0..=1.0f64);
        let sales = list * (1.0 - discount * 0.8);
        let q = quantity as f64;
        let ext_discount = q * (list - sales);
        let ext_sales = q * sales;
        let ext_wholesale = q * wholesale;
        let ext_list = q * list;
        let tax = ext_sales * 0.08;
        let coupon = if rng.random::<f64>() < 0.1 { ext_sales * rng.random_range(0.0..=0.5) } else { 0.0 };
        let net_paid = ext_sales - coupon;
        let net_paid_inc_tax = net_paid + tax;
        let net_profit = net_paid - ext_wholesale;

        vec![
            self.maybe_null(&mut rng, Cell::Int(date.date_sk())),
            self.maybe_null(&mut rng, Cell::Int(time_sk)),
            Cell::Int(item),
            self.maybe_null(&mut rng, Cell::Int(customer)),
            self.maybe_null(&mut rng, Cell::Int(cdemo)),
            self.maybe_null(&mut rng, Cell::Int(hdemo)),
            self.maybe_null(&mut rng, Cell::Int(addr)),
            self.maybe_null(&mut rng, Cell::Int(store)),
            self.maybe_null(&mut rng, Cell::Int(promo)),
            Cell::Int(ticket as i64),
            Cell::Int(quantity),
            Cell::dec2(wholesale),
            Cell::dec2(list),
            Cell::dec2(sales),
            Cell::dec2(ext_discount),
            Cell::dec2(ext_sales),
            Cell::dec2(ext_wholesale),
            Cell::dec2(ext_list),
            Cell::dec2(tax),
            Cell::dec2(coupon),
            Cell::dec2(net_paid),
            Cell::dec2(net_paid_inc_tax),
            Cell::dec2(net_profit),
        ]
    }

    /// The `store_sales` line a `store_returns` row refunds.
    pub fn returned_sale_line(&self, ret_idx: u64) -> u64 {
        let ss = self.row_count(TableId::StoreSales);
        (ret_idx.wrapping_mul(10).wrapping_add(3)) % ss
    }

    fn store_returns_row(&self, idx: u64) -> Vec<Cell> {
        let sale_idx = self.returned_sale_line(idx);
        let ticket = sale_idx / LINES_PER_TICKET + 1;
        let (sold_date, customer, cdemo, hdemo, addr, store) = self.ticket_attrs(ticket);
        // Re-derive the sold line's item deterministically.
        let mut sale_rng = self.rng(TableId::StoreSales, 0, sale_idx);
        let item = self.fk(&mut sale_rng, TableId::Item);

        let mut rng = self.rng(TableId::StoreReturns, 0, idx);
        let returned = sold_date.plus_days(rng.random_range(1..=130i64));
        let reason = self.fk(&mut rng, TableId::Reason);
        let qty = rng.random_range(1..=50i64);
        let amt = rng.random_range(1.0..=500.0f64);
        let tax = amt * 0.08;
        let fee = rng.random_range(0.5..=100.0f64);
        let ship = rng.random_range(0.0..=50.0f64);
        let refunded = amt * rng.random_range(0.0..=1.0f64);
        let reversed = amt - refunded;

        vec![
            self.maybe_null(&mut rng, Cell::Int(returned.date_sk())),
            self.null_time(&mut rng),
            Cell::Int(item),
            self.maybe_null(&mut rng, Cell::Int(customer)),
            self.maybe_null(&mut rng, Cell::Int(cdemo)),
            self.maybe_null(&mut rng, Cell::Int(hdemo)),
            self.maybe_null(&mut rng, Cell::Int(addr)),
            self.maybe_null(&mut rng, Cell::Int(store)),
            self.maybe_null(&mut rng, Cell::Int(reason)),
            Cell::Int(ticket as i64),
            Cell::Int(qty),
            Cell::dec2(amt),
            Cell::dec2(tax),
            Cell::dec2(amt + tax),
            Cell::dec2(fee),
            Cell::dec2(ship),
            Cell::dec2(refunded),
            Cell::dec2(reversed),
            Cell::dec2(0.0),
            Cell::dec2(amt * 0.5 + fee),
        ]
    }

    fn inventory_row(&self, idx: u64) -> Vec<Cell> {
        let total = self.row_count(TableId::Inventory);
        let items = self.row_count(TableId::Item);
        let warehouses = self.row_count(TableId::Warehouse);
        let per_week = (total / INVENTORY_WEEKS).max(1);
        let week = (idx / per_week).min(INVENTORY_WEEKS - 1);
        let within = idx % per_week;
        let item = within % items + 1;
        let warehouse = (within / items) % warehouses + 1;
        let date = INVENTORY_START.plus_days(week as i64 * 7);
        let mut rng = self.rng(TableId::Inventory, 0, idx);
        vec![
            Cell::Int(date.date_sk()),
            Cell::Int(item as i64),
            Cell::Int(warehouse as i64),
            {
                let qty = rng.random_range(0..=1000i64);
                self.maybe_null(&mut rng, Cell::Int(qty))
            },
        ]
    }

    fn catalog_sales_row(&self, idx: u64) -> Vec<Cell> {
        let order = idx / LINES_PER_ORDER + 1;
        let mut orng = self.rng(TableId::CatalogSales, 1, order);
        let date = self.sales_date(&mut orng);
        let bill_customer = self.fk(&mut orng, TableId::Customer);
        let bill_cdemo = self.fk(&mut orng, TableId::CustomerDemographics);
        let bill_hdemo = self.fk(&mut orng, TableId::HouseholdDemographics);
        let bill_addr = self.fk(&mut orng, TableId::CustomerAddress);
        let cc = self.fk(&mut orng, TableId::CallCenter);

        let mut rng = self.rng(TableId::CatalogSales, 0, idx);
        let item = self.fk(&mut rng, TableId::Item);
        let quantity = rng.random_range(1..=100i64);
        let wholesale = rng.random_range(1.0..=100.0f64);
        let list = wholesale * rng.random_range(1.0..=2.0);
        let sales = list * rng.random_range(0.2..=1.0);
        let q = quantity as f64;
        let ship_cost = rng.random_range(0.0..=50.0f64);
        let ship_date = date.plus_days(rng.random_range(1..=30));

        vec![
            self.maybe_null(&mut rng, Cell::Int(date.date_sk())),
            self.null_time(&mut rng),
            self.maybe_null(&mut rng, Cell::Int(ship_date.date_sk())),
            self.maybe_null(&mut rng, Cell::Int(bill_customer)),
            self.maybe_null(&mut rng, Cell::Int(bill_cdemo)),
            self.maybe_null(&mut rng, Cell::Int(bill_hdemo)),
            self.maybe_null(&mut rng, Cell::Int(bill_addr)),
            self.maybe_null(&mut rng, Cell::Int(bill_customer)),
            self.maybe_null(&mut rng, Cell::Int(bill_cdemo)),
            self.maybe_null(&mut rng, Cell::Int(bill_hdemo)),
            self.maybe_null(&mut rng, Cell::Int(bill_addr)),
            self.maybe_null(&mut rng, Cell::Int(cc)),
            self.null_fk(&mut rng, TableId::CatalogPage),
            self.null_fk(&mut rng, TableId::ShipMode),
            self.null_fk(&mut rng, TableId::Warehouse),
            Cell::Int(item),
            self.null_fk(&mut rng, TableId::Promotion),
            Cell::Int(order as i64),
            Cell::Int(quantity),
            Cell::dec2(wholesale),
            Cell::dec2(list),
            Cell::dec2(sales),
            Cell::dec2(q * (list - sales)),
            Cell::dec2(q * sales),
            Cell::dec2(q * wholesale),
            Cell::dec2(q * list),
            Cell::dec2(q * sales * 0.08),
            Cell::dec2(0.0),
            Cell::dec2(ship_cost),
            Cell::dec2(q * sales),
            Cell::dec2(q * sales * 1.08),
            Cell::dec2(q * sales + ship_cost),
            Cell::dec2(q * sales * 1.08 + ship_cost),
            Cell::dec2(q * (sales - wholesale)),
        ]
    }

    fn catalog_returns_row(&self, idx: u64) -> Vec<Cell> {
        let cs = self.row_count(TableId::CatalogSales);
        let sale_idx = (idx.wrapping_mul(10).wrapping_add(7)) % cs;
        let order = sale_idx / LINES_PER_ORDER + 1;
        let mut orng = self.rng(TableId::CatalogSales, 1, order);
        let sold = self.sales_date(&mut orng);
        let customer = self.fk(&mut orng, TableId::Customer);
        let cdemo = self.fk(&mut orng, TableId::CustomerDemographics);
        let hdemo = self.fk(&mut orng, TableId::HouseholdDemographics);
        let addr = self.fk(&mut orng, TableId::CustomerAddress);
        let cc = self.fk(&mut orng, TableId::CallCenter);
        let mut sale_rng = self.rng(TableId::CatalogSales, 0, sale_idx);
        let item = self.fk(&mut sale_rng, TableId::Item);

        let mut rng = self.rng(TableId::CatalogReturns, 0, idx);
        let returned = sold.plus_days(rng.random_range(1..=130));
        let amt = rng.random_range(1.0..=500.0f64);
        vec![
            self.maybe_null(&mut rng, Cell::Int(returned.date_sk())),
            self.null_time(&mut rng),
            Cell::Int(item),
            self.maybe_null(&mut rng, Cell::Int(customer)),
            self.maybe_null(&mut rng, Cell::Int(cdemo)),
            self.maybe_null(&mut rng, Cell::Int(hdemo)),
            self.maybe_null(&mut rng, Cell::Int(addr)),
            self.maybe_null(&mut rng, Cell::Int(customer)),
            self.maybe_null(&mut rng, Cell::Int(cdemo)),
            self.maybe_null(&mut rng, Cell::Int(hdemo)),
            self.maybe_null(&mut rng, Cell::Int(addr)),
            self.maybe_null(&mut rng, Cell::Int(cc)),
            self.null_fk(&mut rng, TableId::CatalogPage),
            self.null_fk(&mut rng, TableId::ShipMode),
            self.null_fk(&mut rng, TableId::Warehouse),
            self.null_fk(&mut rng, TableId::Reason),
            Cell::Int(order as i64),
            Cell::Int(rng.random_range(1..=50i64)),
            Cell::dec2(amt),
            Cell::dec2(amt * 0.08),
            Cell::dec2(amt * 1.08),
            Cell::dec2(rng.random_range(0.5..=100.0)),
            Cell::dec2(rng.random_range(0.0..=50.0)),
            Cell::dec2(amt * 0.6),
            Cell::dec2(amt * 0.4),
            Cell::dec2(0.0),
            Cell::dec2(amt * 0.5),
        ]
    }

    fn web_sales_row(&self, idx: u64) -> Vec<Cell> {
        let order = idx / LINES_PER_ORDER + 1;
        let mut orng = self.rng(TableId::WebSales, 1, order);
        let date = self.sales_date(&mut orng);
        let customer = self.fk(&mut orng, TableId::Customer);
        let cdemo = self.fk(&mut orng, TableId::CustomerDemographics);
        let hdemo = self.fk(&mut orng, TableId::HouseholdDemographics);
        let addr = self.fk(&mut orng, TableId::CustomerAddress);

        let mut rng = self.rng(TableId::WebSales, 0, idx);
        let item = self.fk(&mut rng, TableId::Item);
        let quantity = rng.random_range(1..=100i64);
        let wholesale = rng.random_range(1.0..=100.0f64);
        let list = wholesale * rng.random_range(1.0..=2.0);
        let sales = list * rng.random_range(0.2..=1.0);
        let q = quantity as f64;
        let ship_cost = rng.random_range(0.0..=50.0f64);
        vec![
            self.maybe_null(&mut rng, Cell::Int(date.date_sk())),
            self.null_time(&mut rng),
            {
                let ship = date.plus_days(rng.random_range(1..=30)).date_sk();
                self.maybe_null(&mut rng, Cell::Int(ship))
            },
            Cell::Int(item),
            self.maybe_null(&mut rng, Cell::Int(customer)),
            self.maybe_null(&mut rng, Cell::Int(cdemo)),
            self.maybe_null(&mut rng, Cell::Int(hdemo)),
            self.maybe_null(&mut rng, Cell::Int(addr)),
            self.maybe_null(&mut rng, Cell::Int(customer)),
            self.maybe_null(&mut rng, Cell::Int(cdemo)),
            self.maybe_null(&mut rng, Cell::Int(hdemo)),
            self.maybe_null(&mut rng, Cell::Int(addr)),
            self.null_fk(&mut rng, TableId::WebPage),
            self.null_fk(&mut rng, TableId::WebSite),
            self.null_fk(&mut rng, TableId::ShipMode),
            self.null_fk(&mut rng, TableId::Warehouse),
            self.null_fk(&mut rng, TableId::Promotion),
            Cell::Int(order as i64),
            Cell::Int(quantity),
            Cell::dec2(wholesale),
            Cell::dec2(list),
            Cell::dec2(sales),
            Cell::dec2(q * (list - sales)),
            Cell::dec2(q * sales),
            Cell::dec2(q * wholesale),
            Cell::dec2(q * list),
            Cell::dec2(q * sales * 0.08),
            Cell::dec2(0.0),
            Cell::dec2(ship_cost),
            Cell::dec2(q * sales),
            Cell::dec2(q * sales * 1.08),
            Cell::dec2(q * sales + ship_cost),
            Cell::dec2(q * sales * 1.08 + ship_cost),
            Cell::dec2(q * (sales - wholesale)),
        ]
    }

    fn web_returns_row(&self, idx: u64) -> Vec<Cell> {
        let ws = self.row_count(TableId::WebSales);
        let sale_idx = (idx.wrapping_mul(10).wrapping_add(1)) % ws;
        let order = sale_idx / LINES_PER_ORDER + 1;
        let mut orng = self.rng(TableId::WebSales, 1, order);
        let sold = self.sales_date(&mut orng);
        let customer = self.fk(&mut orng, TableId::Customer);
        let cdemo = self.fk(&mut orng, TableId::CustomerDemographics);
        let hdemo = self.fk(&mut orng, TableId::HouseholdDemographics);
        let addr = self.fk(&mut orng, TableId::CustomerAddress);
        let mut sale_rng = self.rng(TableId::WebSales, 0, sale_idx);
        let item = self.fk(&mut sale_rng, TableId::Item);

        let mut rng = self.rng(TableId::WebReturns, 0, idx);
        let returned = sold.plus_days(rng.random_range(1..=130));
        let amt = rng.random_range(1.0..=500.0f64);
        vec![
            self.maybe_null(&mut rng, Cell::Int(returned.date_sk())),
            self.null_time(&mut rng),
            Cell::Int(item),
            self.maybe_null(&mut rng, Cell::Int(customer)),
            self.maybe_null(&mut rng, Cell::Int(cdemo)),
            self.maybe_null(&mut rng, Cell::Int(hdemo)),
            self.maybe_null(&mut rng, Cell::Int(addr)),
            self.maybe_null(&mut rng, Cell::Int(customer)),
            self.maybe_null(&mut rng, Cell::Int(cdemo)),
            self.maybe_null(&mut rng, Cell::Int(hdemo)),
            self.maybe_null(&mut rng, Cell::Int(addr)),
            self.null_fk(&mut rng, TableId::WebPage),
            self.null_fk(&mut rng, TableId::Reason),
            Cell::Int(order as i64),
            Cell::Int(rng.random_range(1..=50i64)),
            Cell::dec2(amt),
            Cell::dec2(amt * 0.08),
            Cell::dec2(amt * 1.08),
            Cell::dec2(rng.random_range(0.5..=100.0)),
            Cell::dec2(rng.random_range(0.0..=50.0)),
            Cell::dec2(amt * 0.6),
            Cell::dec2(amt * 0.4),
            Cell::dec2(0.0),
            Cell::dec2(amt * 0.5),
        ]
    }

    // ----- dimensions ---------------------------------------------------

    /// First calendar day of the generated `date_dim`: 1900-01-01 at full
    /// size, 1996-01-01 when shrunk (so the workload's 1998–2002 fact
    /// dates always resolve).
    pub fn date_dim_start(&self) -> Date {
        if self.row_count(TableId::DateDim) >= 73_049 {
            Date::new(1900, 1, 1)
        } else {
            Date::new(1996, 1, 1)
        }
    }

    fn date_dim_row(&self, idx: u64) -> Vec<Cell> {
        let date = self.date_dim_start().plus_days(idx as i64);
        let sk = date.date_sk();
        let dow = date.day_of_week();
        let month_seq = (date.year - 1900) as i64 * 12 + date.month as i64 - 1;
        let week_seq = date.days_since_1900() / 7 + 1;
        let qoy = (date.month - 1) / 3 + 1;
        let quarter_seq = (date.year - 1900) as i64 * 4 + qoy as i64 - 1;
        let first_dom = Date::new(date.year, date.month, 1).date_sk();
        let last_dom =
            Date::new(date.year, date.month, crate::dates::days_in_month(date.year, date.month))
                .date_sk();
        let weekend = if dow == 0 || dow == 6 { "Y" } else { "N" };
        vec![
            Cell::Int(sk),
            Cell::str(text::business_key(idx)),
            Cell::str(date.to_iso()),
            Cell::Int(month_seq),
            Cell::Int(week_seq),
            Cell::Int(quarter_seq),
            Cell::Int(i64::from(date.year)),
            Cell::Int(i64::from(dow)),
            Cell::Int(i64::from(date.month)),
            Cell::Int(i64::from(date.day)),
            Cell::Int(i64::from(qoy)),
            Cell::Int(i64::from(date.year)),
            Cell::Int(quarter_seq),
            Cell::Int(week_seq),
            Cell::str(text::DAY_NAMES[dow as usize]),
            Cell::str(format!("{}Q{}", date.year, qoy)),
            Cell::str("N"),
            Cell::str(weekend),
            Cell::str("N"),
            Cell::Int(first_dom),
            Cell::Int(last_dom),
            Cell::Int(sk - 365),
            Cell::Int(sk - 91),
            Cell::str("N"),
            Cell::str("N"),
            Cell::str("N"),
            Cell::str("N"),
            Cell::str("N"),
        ]
    }

    fn time_dim_row(&self, idx: u64) -> Vec<Cell> {
        let count = self.row_count(TableId::TimeDim);
        let second_of_day = idx * (86_400 / count.max(1)).max(1) % 86_400;
        let hour = second_of_day / 3600;
        let minute = (second_of_day % 3600) / 60;
        let second = second_of_day % 60;
        vec![
            Cell::Int(idx as i64),
            Cell::str(text::business_key(idx)),
            Cell::Int(second_of_day as i64),
            Cell::Int(hour as i64),
            Cell::Int(minute as i64),
            Cell::Int(second as i64),
            Cell::str(if hour < 12 { "AM" } else { "PM" }),
            Cell::str(text::pick(text::SHIFTS, hour / 8)),
            Cell::str(text::pick(text::SHIFTS, hour / 3)),
            Cell::str(text::pick(text::MEAL_TIMES, hour / 6)),
        ]
    }

    fn item_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::Item, 0, idx);
        // Prices skew low (squared uniform over 0.09..100). Every 25th
        // item is pinned inside Query 21's [0.99, 1.49] band so the band
        // has deterministic ~4% coverage at every scale (dsdgen's value
        // distributions guarantee predicate coverage the same way).
        let price = if idx.is_multiple_of(25) {
            rng.random_range(0.99..=1.49)
        } else {
            let u: f64 = rng.random();
            0.09 + u * u * 99.9
        };
        let wholesale = price * rng.random_range(0.4..=0.9);
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            Cell::str("1997-10-27"),
            Cell::Null,
            Cell::str(text::description(idx, 15)),
            Cell::dec2(price),
            Cell::dec2(wholesale),
            Cell::Int(rng.random_range(1..=10i64) * 1_000_000 + rng.random_range(1..=16i64) * 1000),
            Cell::str(format!("brand#{}", rng.random_range(1..=50i64))),
            Cell::Int(rng.random_range(1..=16i64)),
            Cell::str(text::pick(text::ITEM_CLASSES, idx)),
            Cell::Int(rng.random_range(1..=10i64)),
            Cell::str(text::pick(text::ITEM_CATEGORIES, idx / 20)),
            Cell::Int(rng.random_range(1..=1000i64)),
            Cell::str(format!("manufact#{}", rng.random_range(1..=100i64))),
            Cell::str(text::pick(&["small", "medium", "large", "extra large", "petite", "N/A"], idx)),
            Cell::str(format!("{:08x}", rng.random::<u32>())),
            Cell::str(text::pick(text::COLORS, rng.random_range(0..text::COLORS.len() as u64))),
            Cell::str(text::pick(text::UNITS, idx)),
            Cell::str(text::pick(text::CONTAINERS, idx)),
            Cell::Int(rng.random_range(1..=100i64)),
            Cell::str(text::description(idx.wrapping_mul(7), 5)),
        ]
    }

    fn customer_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::Customer, 0, idx);
        let first = text::pick(text::FIRST_NAMES, rng.random_range(0..1_000_000));
        let last = text::pick(text::LAST_NAMES, rng.random_range(0..1_000_000));
        let birth_year = rng.random_range(1930..=1992i64);
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            self.null_fk(&mut rng, TableId::CustomerDemographics),
            self.null_fk(&mut rng, TableId::HouseholdDemographics),
            self.null_fk(&mut rng, TableId::CustomerAddress),
            {
                let d = Date::new(1998, 1, 1).plus_days(rng.random_range(0..SALES_DAYS)).date_sk();
                self.maybe_null(&mut rng, Cell::Int(d))
            },
            {
                let d = Date::new(1998, 1, 1).plus_days(rng.random_range(0..SALES_DAYS)).date_sk();
                self.maybe_null(&mut rng, Cell::Int(d))
            },
            Cell::str(text::pick(&["Mr.", "Mrs.", "Ms.", "Dr.", "Miss", "Sir"], rng.random_range(0..6))),
            Cell::str(first),
            Cell::str(last),
            Cell::str(if rng.random::<bool>() { "Y" } else { "N" }),
            Cell::Int(rng.random_range(1..=28i64)),
            Cell::Int(rng.random_range(1..=12i64)),
            Cell::Int(birth_year),
            Cell::str(text::pick(&["UNITED STATES", "CANADA", "MEXICO", "FRANCE", "JAPAN"], rng.random_range(0..100))),
            Cell::Null,
            Cell::str(format!("{first}.{last}@G3sM4P.com")),
            Cell::Int(Date::new(2002, 1, 1).plus_days(rng.random_range(0..365)).date_sk()),
        ]
    }

    fn customer_address_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::CustomerAddress, 0, idx);
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            Cell::str(rng.random_range(1..=1000i64).to_string()),
            Cell::str(text::pick(text::STREET_NAMES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STREET_TYPES, rng.random_range(0..1000))),
            Cell::str(format!("Suite {}", rng.random_range(0..=990i64) / 10 * 10)),
            Cell::str(text::pick(text::CITIES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::COUNTIES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STATES, rng.random_range(0..1000))),
            Cell::str(format!("{:05}", rng.random_range(10000..99999i64))),
            Cell::str("United States"),
            Cell::dec2(-(rng.random_range(5..=8i64) as f64)),
            Cell::str(text::pick(&["apartment", "condo", "single family"], rng.random_range(0..3))),
        ]
    }

    fn promotion_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::Promotion, 0, idx);
        // Channels are 'N' ~90% of the time, like dsdgen, so Query 7's
        // `(email = 'N' OR event = 'N')` keeps high selectivity.
        let flag = |rng: &mut SmallRng| {
            Cell::str(if rng.random::<f64>() < 0.9 { "N" } else { "Y" })
        };
        let start = Date::new(1998, 1, 1).plus_days(rng.random_range(0..SALES_DAYS));
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            Cell::Int(start.date_sk()),
            Cell::Int(start.plus_days(rng.random_range(10..=60)).date_sk()),
            Cell::Int(self.fk(&mut rng, TableId::Item)),
            Cell::dec2(1000.0),
            Cell::Int(rng.random_range(1..=5i64)),
            Cell::str(text::pick(&["ought", "able", "pri", "ese", "anti"], idx)),
            flag(&mut rng),
            flag(&mut rng),
            flag(&mut rng),
            flag(&mut rng),
            flag(&mut rng),
            flag(&mut rng),
            flag(&mut rng),
            flag(&mut rng),
            Cell::str(text::description(idx, 8)),
            Cell::str(text::pick(text::PROMO_PURPOSES, idx)),
            Cell::str("N"),
        ]
    }

    fn store_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::Store, 0, idx);
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            Cell::str("1997-03-13"),
            Cell::Null,
            Cell::Null,
            Cell::str(text::pick(text::STORE_NAMES, idx)),
            Cell::Int(rng.random_range(200..=300i64)),
            Cell::Int(rng.random_range(5_000_000..=10_000_000i64)),
            Cell::str("8AM-8PM"),
            Cell::str(format!(
                "{} {}",
                text::pick(text::FIRST_NAMES, rng.random_range(0..1000)),
                text::pick(text::LAST_NAMES, rng.random_range(0..1000))
            )),
            Cell::Int(rng.random_range(1..=10i64)),
            Cell::str("Unknown"),
            Cell::str(text::description(idx, 20)),
            Cell::str(format!(
                "{} {}",
                text::pick(text::FIRST_NAMES, rng.random_range(0..1000)),
                text::pick(text::LAST_NAMES, rng.random_range(0..1000))
            )),
            Cell::Int(rng.random_range(1..=5i64)),
            Cell::str("Unknown"),
            Cell::Int(rng.random_range(1..=6i64)),
            Cell::str("Unknown"),
            Cell::str(rng.random_range(1..=1000i64).to_string()),
            Cell::str(text::pick(text::STREET_NAMES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STREET_TYPES, rng.random_range(0..1000))),
            Cell::str(format!("Suite {}", rng.random_range(0..=99i64) * 10)),
            // Store cities draw from the biased pool: Midway/Fairview heavy,
            // matching the Query 46 predicate's intent. Every third store is
            // pinned to the biased head of the pool so the predicate keeps
            // matching rows even at scale factors with a dozen stores, where
            // a pure 20%-per-store draw has a real chance of missing entirely.
            {
                let draw = rng.random_range(0..1000);
                if idx.is_multiple_of(3) {
                    Cell::str(text::CITIES[(idx / 3) as usize % 4])
                } else {
                    Cell::str(text::pick(text::CITIES, draw))
                }
            },
            Cell::str(text::pick(text::COUNTIES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STATES, rng.random_range(0..1000))),
            Cell::str(format!("{:05}", rng.random_range(10000..99999i64))),
            Cell::str("United States"),
            Cell::dec2(-5.0),
            Cell::dec2(rng.random_range(0.0..=0.11)),
        ]
    }

    fn warehouse_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::Warehouse, 0, idx);
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            Cell::str(text::pick(text::WAREHOUSE_NAMES, idx)),
            Cell::Int(rng.random_range(50_000..=1_000_000i64)),
            Cell::str(rng.random_range(1..=1000i64).to_string()),
            Cell::str(text::pick(text::STREET_NAMES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STREET_TYPES, rng.random_range(0..1000))),
            Cell::str(format!("Suite {}", rng.random_range(0..=99i64) * 10)),
            Cell::str(text::pick(text::CITIES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::COUNTIES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STATES, rng.random_range(0..1000))),
            Cell::str(format!("{:05}", rng.random_range(10000..99999i64))),
            Cell::str("United States"),
            Cell::dec2(-5.0),
        ]
    }

    fn call_center_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::CallCenter, 0, idx);
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            Cell::str("1998-01-01"),
            Cell::Null,
            Cell::Null,
            Cell::Int(Date::new(1998, 1, 1).date_sk()),
            Cell::str(format!("NY Metro_{idx}")),
            Cell::str("large"),
            Cell::Int(rng.random_range(100..=700i64)),
            Cell::Int(rng.random_range(10_000..=40_000i64)),
            Cell::str("8AM-8PM"),
            Cell::str(text::pick(text::FIRST_NAMES, rng.random_range(0..1000))),
            Cell::Int(rng.random_range(1..=6i64)),
            Cell::str("More than other authori"),
            Cell::str(text::description(idx, 20)),
            Cell::str(text::pick(text::LAST_NAMES, rng.random_range(0..1000))),
            Cell::Int(rng.random_range(1..=5i64)),
            Cell::str("Unknown"),
            Cell::Int(rng.random_range(1..=6i64)),
            Cell::str("Unknown"),
            Cell::str(rng.random_range(1..=1000i64).to_string()),
            Cell::str(text::pick(text::STREET_NAMES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STREET_TYPES, rng.random_range(0..1000))),
            Cell::str(format!("Suite {}", rng.random_range(0..=99i64) * 10)),
            Cell::str(text::pick(text::CITIES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::COUNTIES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STATES, rng.random_range(0..1000))),
            Cell::str(format!("{:05}", rng.random_range(10000..99999i64))),
            Cell::str("United States"),
            Cell::dec2(-5.0),
            Cell::dec2(rng.random_range(0.0..=0.12)),
        ]
    }

    fn catalog_page_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::CatalogPage, 0, idx);
        let start = Date::new(1998, 1, 1).plus_days((idx as i64 % 60) * 30);
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            Cell::Int(start.date_sk()),
            Cell::Int(start.plus_days(90).date_sk()),
            Cell::str("DEPARTMENT"),
            Cell::Int(idx as i64 / 100 + 1),
            Cell::Int(idx as i64 % 100 + 1),
            Cell::str(text::description(idx, 12)),
            Cell::str(text::pick(&["bi-annual", "quarterly", "monthly"], rng.random_range(0..3))),
        ]
    }

    fn web_page_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::WebPage, 0, idx);
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            Cell::str("1997-09-03"),
            Cell::Null,
            Cell::Int(Date::new(1997, 9, 3).date_sk()),
            Cell::Int(Date::new(2000, 9, 3).date_sk()),
            Cell::str(if rng.random::<bool>() { "Y" } else { "N" }),
            self.null_fk(&mut rng, TableId::Customer),
            Cell::str("http://www.foo.com"),
            Cell::str(text::pick(&["welcome", "protected", "dynamic", "feedback", "general", "ad", "order"], rng.random_range(0..7))),
            Cell::Int(rng.random_range(1000..=8000i64)),
            Cell::Int(rng.random_range(2..=25i64)),
            Cell::Int(rng.random_range(1..=7i64)),
            Cell::Int(rng.random_range(0..=4i64)),
        ]
    }

    fn web_site_row(&self, idx: u64) -> Vec<Cell> {
        let mut rng = self.rng(TableId::WebSite, 0, idx);
        vec![
            Cell::Int(idx as i64 + 1),
            Cell::str(text::business_key(idx)),
            Cell::str("1997-08-16"),
            Cell::Null,
            Cell::str(format!("site_{idx}")),
            Cell::Int(Date::new(1997, 8, 16).date_sk()),
            Cell::Null,
            Cell::str("Unknown"),
            Cell::str(text::pick(text::FIRST_NAMES, rng.random_range(0..1000))),
            Cell::Int(rng.random_range(1..=6i64)),
            Cell::str("Unknown"),
            Cell::str(text::description(idx, 20)),
            Cell::str(text::pick(text::LAST_NAMES, rng.random_range(0..1000))),
            Cell::Int(rng.random_range(1..=6i64)),
            Cell::str(text::pick(&["pri", "able", "ought", "ese", "anti", "cally"], rng.random_range(0..6))),
            Cell::str(rng.random_range(1..=1000i64).to_string()),
            Cell::str(text::pick(text::STREET_NAMES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STREET_TYPES, rng.random_range(0..1000))),
            Cell::str(format!("Suite {}", rng.random_range(0..=99i64) * 10)),
            Cell::str(text::pick(text::CITIES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::COUNTIES, rng.random_range(0..1000))),
            Cell::str(text::pick(text::STATES, rng.random_range(0..1000))),
            Cell::str(format!("{:05}", rng.random_range(10000..99999i64))),
            Cell::str("United States"),
            Cell::dec2(-5.0),
            Cell::dec2(rng.random_range(0.0..=0.12)),
        ]
    }
}

// Positional cross-product dimensions (no RNG: the row index encodes the
// combination, as in dsdgen).

fn customer_demographics_row(idx: u64) -> Vec<Cell> {
    // 1,920,800 = 2 genders × 5 marital × 7 education × 20 purchase ×
    // 4 credit × 7 dep × 7 dep_employed × 7 dep_college / 10 — positional
    // decomposition over the leading factors covers all combinations
    // uniformly at any row count.
    let gender = idx % 2;
    let marital = (idx / 2) % 5;
    let education = (idx / 10) % 7;
    let purchase = (idx / 70) % 20;
    let credit = (idx / 1400) % 4;
    let dep = (idx / 5600) % 7;
    let dep_emp = (idx / 39_200) % 7;
    let dep_col = (idx / 274_400) % 7;
    vec![
        Cell::Int(idx as i64 + 1),
        Cell::str(text::GENDERS[gender as usize]),
        Cell::str(text::MARITAL_STATUS[marital as usize]),
        Cell::str(text::EDUCATION[education as usize]),
        Cell::Int((purchase as i64 + 1) * 500),
        Cell::str(text::CREDIT_RATING[credit as usize]),
        Cell::Int(dep as i64),
        Cell::Int(dep_emp as i64),
        Cell::Int(dep_col as i64),
    ]
}

fn household_demographics_row(idx: u64) -> Vec<Cell> {
    // 7,200 = 20 income bands × 6 buy potentials × 10 dep counts ×
    // 6 vehicle counts.
    let income = idx % 20;
    let buy = (idx / 20) % 6;
    let dep = (idx / 120) % 10;
    let vehicle = (idx / 1200) % 6;
    vec![
        Cell::Int(idx as i64 + 1),
        Cell::Int(income as i64 + 1),
        Cell::str(text::BUY_POTENTIAL[buy as usize]),
        Cell::Int(dep as i64),
        Cell::Int(vehicle as i64),
    ]
}

fn income_band_row(idx: u64) -> Vec<Cell> {
    vec![
        Cell::Int(idx as i64 + 1),
        Cell::Int(idx as i64 * 10_000 + 1),
        Cell::Int((idx as i64 + 1) * 10_000),
    ]
}

fn reason_row(idx: u64) -> Vec<Cell> {
    vec![
        Cell::Int(idx as i64 + 1),
        Cell::str(text::business_key(idx)),
        Cell::str(text::pick(text::REASONS, idx)),
    ]
}

fn ship_mode_row(idx: u64) -> Vec<Cell> {
    vec![
        Cell::Int(idx as i64 + 1),
        Cell::str(text::business_key(idx)),
        Cell::str(text::pick(text::SHIP_MODE_TYPES, idx)),
        Cell::str(text::pick(text::SHIP_MODE_CODES, idx / 6)),
        Cell::str(text::pick(text::CARRIERS, idx)),
        Cell::str(format!("{}", 100 + idx)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::table_def;

    fn small() -> Generator {
        Generator::new(0.001)
    }

    #[test]
    fn rows_match_schema_arity_for_every_table() {
        let g = small();
        for t in TableId::ALL {
            let def = table_def(t);
            let n = g.row_count(t).min(50);
            for i in 0..n {
                let row = g.row(t, i);
                assert_eq!(row.len(), def.columns.len(), "{t} row {i}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Generator::new(0.01);
        let b = Generator::new(0.01);
        for t in [TableId::StoreSales, TableId::Item, TableId::Customer] {
            assert_eq!(a.row(t, 7), b.row(t, 7), "{t}");
        }
        let c = Generator::with_seed(0.01, 999);
        assert_ne!(a.row(TableId::StoreSales, 7), c.row(TableId::StoreSales, 7));
    }

    #[test]
    fn primary_keys_are_sequential_and_non_null() {
        let g = small();
        for t in [TableId::Item, TableId::Customer, TableId::Store, TableId::DateDim] {
            let def = table_def(t);
            let pk_idx = def.column_index(def.primary_key[0]).unwrap();
            let r0 = g.row(t, 0);
            let r1 = g.row(t, 1);
            assert!(matches!(r0[pk_idx], Cell::Int(_)), "{t}");
            if t != TableId::DateDim {
                assert_eq!(r0[pk_idx], Cell::Int(1), "{t}");
                assert_eq!(r1[pk_idx], Cell::Int(2), "{t}");
            }
        }
    }

    #[test]
    fn store_sales_lines_share_ticket_attributes() {
        let g = Generator::new(0.01);
        let def = table_def(TableId::StoreSales);
        let cust = def.column_index("ss_customer_sk").unwrap();
        let tick = def.column_index("ss_ticket_number").unwrap();
        // Lines 0..12 share ticket 1; nullable fields may be NULL, so
        // compare only non-null pairs.
        let rows: Vec<_> = (0..LINES_PER_TICKET).map(|i| g.row(TableId::StoreSales, i)).collect();
        assert!(rows.iter().all(|r| r[tick] == Cell::Int(1)));
        let customers: Vec<&Cell> =
            rows.iter().map(|r| &r[cust]).filter(|c| **c != Cell::Null).collect();
        assert!(customers.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn store_returns_reference_real_sales() {
        let g = Generator::new(0.01);
        let sr_def = table_def(TableId::StoreReturns);
        let ss_def = table_def(TableId::StoreSales);
        for ret in 0..20u64 {
            let sale_idx = g.returned_sale_line(ret);
            let sr = g.row(TableId::StoreReturns, ret);
            let ss = g.row(TableId::StoreSales, sale_idx);
            assert_eq!(
                sr[sr_def.column_index("sr_ticket_number").unwrap()],
                ss[ss_def.column_index("ss_ticket_number").unwrap()],
                "ret {ret}"
            );
            assert_eq!(
                sr[sr_def.column_index("sr_item_sk").unwrap()],
                ss[ss_def.column_index("ss_item_sk").unwrap()],
                "ret {ret}"
            );
            // Return happens after the sale.
            let (Cell::Int(sold), Cell::Int(returned)) = (
                &ss[ss_def.column_index("ss_sold_date_sk").unwrap()],
                &sr[sr_def.column_index("sr_returned_date_sk").unwrap()],
            ) else {
                continue; // either date NULLed out
            };
            assert!(returned > sold, "ret {ret}: {returned} <= {sold}");
            assert!(returned - sold <= 130);
        }
    }

    #[test]
    fn fact_fks_stay_in_dimension_range() {
        let g = Generator::new(0.01);
        let def = table_def(TableId::StoreSales);
        let item_max = g.row_count(TableId::Item) as i64;
        let cust_max = g.row_count(TableId::Customer) as i64;
        let item_idx = def.column_index("ss_item_sk").unwrap();
        let cust_idx = def.column_index("ss_customer_sk").unwrap();
        for i in 0..500 {
            let row = g.row(TableId::StoreSales, i);
            if let Cell::Int(v) = row[item_idx] {
                assert!(v >= 1 && v <= item_max, "item {v}");
            }
            if let Cell::Int(v) = row[cust_idx] {
                assert!(v >= 1 && v <= cust_max, "customer {v}");
            }
        }
    }

    #[test]
    fn demographics_cross_product_covers_q7_filter() {
        // Exactly 1/70 of cdemo rows are (M, M, 4 yr Degree).
        let g = Generator::new(0.01);
        let n = g.row_count(TableId::CustomerDemographics);
        let hits = (0..n)
            .map(customer_demographics_row)
            .filter(|r| {
                r[1] == Cell::str("M") && r[2] == Cell::str("M") && r[3] == Cell::str("4 yr Degree")
            })
            .count();
        let expected = n as usize / 70;
        assert!(
            (hits as i64 - expected as i64).abs() <= 1,
            "hits {hits}, expected ~{expected}"
        );
    }

    #[test]
    fn household_demographics_cover_q46_filter() {
        let n = 7200u64;
        let hits = (0..n)
            .map(household_demographics_row)
            .filter(|r| r[3] == Cell::Int(2) || r[4] == Cell::Int(3))
            .count() as f64;
        let expected = (1.0 / 10.0 + 1.0 / 6.0 - 1.0 / 60.0) * n as f64;
        assert!((hits - expected).abs() < 1.0, "hits {hits} vs {expected}");
    }

    #[test]
    fn inventory_weeks_span_query_21_window() {
        let g = Generator::new(0.01);
        let def = table_def(TableId::Inventory);
        let date_idx = def.column_index("inv_date_sk").unwrap();
        let n = g.row_count(TableId::Inventory);
        let Cell::Int(first) = g.row(TableId::Inventory, 0)[date_idx] else { panic!() };
        let Cell::Int(last) = g.row(TableId::Inventory, n - 1)[date_idx] else { panic!() };
        let target = Date::new(2002, 5, 29).date_sk();
        assert!(first < target - 30, "first snapshot {first}");
        assert!(last > target + 30, "last snapshot {last}");
    }

    #[test]
    fn date_dim_rows_encode_calendar_correctly() {
        let g = Generator::new(1.0);
        let def = table_def(TableId::DateDim);
        // Row for 2002-05-29.
        let idx = Date::new(2002, 5, 29).days_since_1900() as u64;
        let row = g.row(TableId::DateDim, idx);
        assert_eq!(row[def.column_index("d_date").unwrap()], Cell::str("2002-05-29"));
        assert_eq!(row[def.column_index("d_year").unwrap()], Cell::Int(2002));
        assert_eq!(row[def.column_index("d_moy").unwrap()], Cell::Int(5));
        assert_eq!(row[def.column_index("d_dom").unwrap()], Cell::Int(29));
        assert_eq!(row[def.column_index("d_dow").unwrap()], Cell::Int(3)); // Wednesday
        assert_eq!(row[def.column_index("d_weekend").unwrap()], Cell::str("N"));
    }

    #[test]
    fn document_generation_omits_nulls() {
        let g = Generator::new(0.01);
        // Scan for a row with at least one NULL and check omission.
        let def = table_def(TableId::StoreSales);
        for i in 0..200 {
            let row = g.row(TableId::StoreSales, i);
            if let Some(pos) = row.iter().position(|c| *c == Cell::Null) {
                let doc = g.document(TableId::StoreSales, i);
                assert!(doc.get(def.columns[pos].name).is_none());
                assert!(doc.len() < def.columns.len());
                return;
            }
        }
        panic!("no NULL encountered in 200 rows — NULL_PROB broken?");
    }

    #[test]
    fn store_cities_include_query_46_targets() {
        let g = Generator::new(1.0);
        let def = table_def(TableId::Store);
        let city_idx = def.column_index("s_city").unwrap();
        let cities: Vec<String> = (0..g.row_count(TableId::Store))
            .map(|i| match &g.row(TableId::Store, i)[city_idx] {
                Cell::Str(s) => s.clone(),
                other => panic!("{other:?}"),
            })
            .collect();
        assert!(
            cities.iter().any(|c| c == "Midway" || c == "Fairview"),
            "cities: {cities:?}"
        );
    }
}
