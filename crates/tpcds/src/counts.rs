//! Row-count model reproducing thesis Table 3.6.
//!
//! The dsdgen counts at scale factor 1 (the "1GB dataset") and scale
//! factor 5 (the "5GB dataset") are anchored exactly; other scale factors
//! interpolate so the thesis's two load-time observations hold at every
//! scale (Section 4.3): fixed-size tables keep identical counts, and
//! scaling tables grow in proportion.

use crate::schema::TableId;

/// Row counts from Table 3.6: `(table, rows@SF1, rows@SF5)`.
pub const TABLE_3_6: [(TableId, u64, u64); 24] = [
    (TableId::CallCenter, 6, 14),
    (TableId::CatalogPage, 11_718, 11_718),
    (TableId::CatalogReturns, 144_067, 720_174),
    (TableId::CatalogSales, 1_441_548, 7_199_490),
    (TableId::Customer, 100_000, 277_000),
    (TableId::CustomerAddress, 50_000, 138_000),
    (TableId::CustomerDemographics, 1_920_800, 1_920_800),
    (TableId::DateDim, 73_049, 73_049),
    (TableId::HouseholdDemographics, 7_200, 7_200),
    (TableId::IncomeBand, 20, 20),
    (TableId::Inventory, 11_745_000, 49_329_000),
    (TableId::Item, 18_000, 54_000),
    (TableId::Promotion, 300, 388),
    (TableId::Reason, 35, 39),
    (TableId::ShipMode, 20, 20),
    (TableId::Store, 12, 52),
    (TableId::StoreReturns, 287_514, 1_437_911),
    (TableId::StoreSales, 2_880_404, 14_400_052),
    (TableId::TimeDim, 86_400, 86_400),
    (TableId::Warehouse, 5, 7),
    (TableId::WebPage, 60, 122),
    (TableId::WebReturns, 71_763, 359_991),
    (TableId::WebSales, 719_384, 3_599_503),
    (TableId::WebSite, 30, 34),
];

fn anchors(table: TableId) -> (u64, u64) {
    TABLE_3_6
        .iter()
        .find(|(t, _, _)| *t == table)
        .map(|(_, a, b)| (*a, *b))
        .expect("every table is anchored")
}

/// Tables whose row counts scale with the dataset (facts plus the three
/// large scaling dimensions). Everything else is fixed for sub-SF1 scales.
pub fn is_scaling(table: TableId) -> bool {
    table.is_fact()
        || matches!(
            table,
            TableId::Customer | TableId::CustomerAddress | TableId::Item
        )
}

/// Row count for a table at a scale factor.
///
/// * `sf >= 1`: linear interpolation between the SF1 and SF5 anchors
///   (extrapolated beyond SF5) — matches Table 3.6 exactly at 1 and 5.
/// * `sf < 1`: scaling tables shrink linearly from the SF1 anchor
///   (minimum 1 row); fixed tables keep their SF1 count, except the very
///   large fixed dimensions (`customer_demographics`, `date_dim`,
///   `time_dim`, `catalog_page`) which shrink like scaling tables with a
///   floor, so laptop-scale runs stay tractable while preserving the
///   "equal counts ⇒ equal load times" observation between any two
///   sub-unit scale factors' *relative* comparison.
pub fn row_count(table: TableId, sf: f64) -> u64 {
    assert!(sf > 0.0, "scale factor must be positive");
    let (c1, c5) = anchors(table);
    if sf >= 1.0 {
        let slope = (c5 as f64 - c1 as f64) / 4.0;
        return (c1 as f64 + slope * (sf - 1.0)).round() as u64;
    }
    if is_scaling(table) {
        return ((c1 as f64 * sf).round() as u64).max(1);
    }
    match table {
        // These large "fixed" dimensions shrink below SF1 so laptop-scale
        // runs stay tractable.
        TableId::CustomerDemographics | TableId::TimeDim | TableId::CatalogPage => {
            ((c1 as f64 * sf).round() as u64).max(100)
        }
        // date_dim shrinks too, but never below the 1996-01-01..2003-12-31
        // window the workload's fact dates fall into (the generator
        // anchors a shrunk date_dim at 1996 — see `gen::date_dim_start`).
        TableId::DateDim => ((c1 as f64 * sf).round() as u64).max(SHRUNK_DATE_DIM_DAYS),
        _ => c1,
    }
}

/// Days in 1996-01-01..=2003-12-31 — the minimum calendar span a shrunk
/// `date_dim` must cover so every fact date key resolves.
pub const SHRUNK_DATE_DIM_DAYS: u64 = 2_922;

/// Weekly inventory snapshots span 1998-01-06 through 2002-12-29 (261
/// weeks), matching dsdgen's five calendar years — Query 21's ±30-day
/// window around 2002-05-29 falls inside this span at every scale.
pub const INVENTORY_WEEKS: u64 = 261;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_table_3_6_exactly() {
        for (t, c1, c5) in TABLE_3_6 {
            assert_eq!(row_count(t, 1.0), c1, "{t} @ SF1");
            assert_eq!(row_count(t, 5.0), c5, "{t} @ SF5");
        }
    }

    #[test]
    fn fixed_tables_stay_fixed_between_anchors() {
        for t in [
            TableId::CatalogPage,
            TableId::CustomerDemographics,
            TableId::DateDim,
            TableId::HouseholdDemographics,
            TableId::IncomeBand,
            TableId::ShipMode,
            TableId::TimeDim,
        ] {
            assert_eq!(row_count(t, 1.0), row_count(t, 5.0), "{t}");
            assert_eq!(row_count(t, 3.0), row_count(t, 1.0), "{t}");
        }
    }

    #[test]
    fn scaling_tables_keep_the_1_to_5_ratio_below_sf1() {
        // store_sales at SF 0.01 and 0.05 must be in 1:5, like the paper's
        // 1GB:5GB datasets.
        let a = row_count(TableId::StoreSales, 0.01);
        let b = row_count(TableId::StoreSales, 0.05);
        assert_eq!(a, 28_804);
        assert_eq!(b, 144_020);
        assert!((b as f64 / a as f64 - 5.0).abs() < 0.01);
    }

    #[test]
    fn small_fixed_tables_never_vanish() {
        assert_eq!(row_count(TableId::Warehouse, 0.01), 5);
        assert_eq!(row_count(TableId::Store, 0.01), 12);
        assert_eq!(row_count(TableId::IncomeBand, 0.001), 20);
    }

    #[test]
    fn big_fixed_dims_shrink_with_floor() {
        assert!(row_count(TableId::CustomerDemographics, 0.01) < 1_920_800);
        assert!(row_count(TableId::CustomerDemographics, 0.0001) >= 100);
        // A shrunk date_dim always covers the 1996–2003 workload window.
        assert_eq!(row_count(TableId::DateDim, 0.0001), SHRUNK_DATE_DIM_DAYS);
        assert_eq!(row_count(TableId::DateDim, 1.0), 73_049);
    }

    #[test]
    fn inventory_dominates_load_volume() {
        // Table 4.3's longest load is inventory at both scales; the count
        // model must preserve that dominance at bench scales too.
        for sf in [0.01, 0.05, 1.0, 5.0] {
            let inv = row_count(TableId::Inventory, sf);
            let ss = row_count(TableId::StoreSales, sf);
            assert!(inv > ss, "sf={sf}: inventory {inv} vs store_sales {ss}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sf_panics() {
        let _ = row_count(TableId::StoreSales, 0.0);
    }
}
