//! Calendar utilities: proleptic Gregorian date arithmetic and the
//! TPC-DS date surrogate-key convention.
//!
//! dsdgen numbers `d_date_sk` as a Julian day; `2415022` corresponds to
//! the first `date_dim` row. We anchor `DATE_SK_EPOCH = 2415021` at
//! 1900-01-01 so `d_date_sk = 2415021 + days_since_1900_01_01`, giving
//! the familiar key values (1998-01-01 → 2450815, 2002-05-29 → 2452424
//! in this numbering).

/// The `d_date_sk` assigned to 1900-01-01.
pub const DATE_SK_EPOCH: i64 = 2_415_021;

/// A calendar date.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Date {
    pub year: i32,
    pub month: u32,
    pub day: u32,
}

impl Date {
    /// Builds a date, panicking on out-of-range components.
    pub fn new(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month {month}");
        assert!(day >= 1 && day <= days_in_month(year, month), "day {day}");
        Date { year, month, day }
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u32 = parts.next()?.parse().ok()?;
        let day: u32 = parts.next()?.parse().ok()?;
        if parts.next().is_some() || !(1..=12).contains(&month) {
            return None;
        }
        if day < 1 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Renders as `YYYY-MM-DD`.
    pub fn to_iso(self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }

    /// Days since 1970-01-01 (may be negative).
    pub fn days_from_civil(self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Days since 1900-01-01.
    pub fn days_since_1900(self) -> i64 {
        self.days_from_civil() - days_from_civil(1900, 1, 1)
    }

    /// The TPC-DS surrogate key for this date.
    pub fn date_sk(self) -> i64 {
        DATE_SK_EPOCH + self.days_since_1900()
    }

    /// The date for a surrogate key.
    pub fn from_date_sk(sk: i64) -> Self {
        let days = sk - DATE_SK_EPOCH + days_from_civil(1900, 1, 1);
        let (y, m, d) = civil_from_days(days);
        Date { year: y, month: m, day: d }
    }

    /// Day of week, 0 = Sunday … 6 = Saturday (TPC-DS `d_dow`).
    pub fn day_of_week(self) -> u32 {
        // 1970-01-01 was a Thursday (dow 4).
        let days = self.days_from_civil();
        ((days % 7 + 7 + 4) % 7) as u32
    }

    /// Adds (or subtracts) days.
    pub fn plus_days(self, n: i64) -> Self {
        let (y, m, d) = civil_from_days(self.days_from_civil() + n);
        Date { year: y, month: m, day: d }
    }

    /// Day of year, 1-based.
    pub fn day_of_year(self) -> u32 {
        (self.days_from_civil() - days_from_civil(self.year, 1, 1) + 1) as u32
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_iso())
    }
}

/// True for Gregorian leap years.
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in a month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month {month}"),
    }
}

/// Howard Hinnant's `days_from_civil`: days since 1970-01-01.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_across_centuries() {
        for days in (-40_000..80_000).step_by(37) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
        }
    }

    #[test]
    fn known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(Date::new(1970, 1, 1).day_of_week(), 4); // Thursday
        assert_eq!(Date::new(2002, 5, 29).day_of_week(), 3); // Wednesday
        assert_eq!(Date::new(1998, 10, 4).day_of_week(), 0); // Sunday
    }

    #[test]
    fn date_sk_anchoring() {
        assert_eq!(Date::new(1900, 1, 1).date_sk(), DATE_SK_EPOCH);
        let sk = Date::new(2002, 5, 29).date_sk();
        assert_eq!(Date::from_date_sk(sk), Date::new(2002, 5, 29));
        // Year 2000 keys land in the 2.45M range like real dsdgen output.
        assert!(Date::new(2000, 1, 1).date_sk() > 2_450_000);
        assert!(Date::new(2000, 1, 1).date_sk() < 2_460_000);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1996));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1999, 2), 28);
    }

    #[test]
    fn parse_and_render() {
        let d = Date::parse("2002-05-29").unwrap();
        assert_eq!(d, Date::new(2002, 5, 29));
        assert_eq!(d.to_iso(), "2002-05-29");
        assert!(Date::parse("2002-13-01").is_none());
        assert!(Date::parse("2002-02-30").is_none());
        assert!(Date::parse("garbage").is_none());
    }

    #[test]
    fn plus_days_and_day_of_year() {
        let d = Date::new(2002, 5, 29);
        assert_eq!(d.plus_days(30), Date::new(2002, 6, 28));
        assert_eq!(d.plus_days(-30), Date::new(2002, 4, 29));
        assert_eq!(Date::new(2000, 12, 31).day_of_year(), 366);
        assert_eq!(Date::new(2001, 1, 1).day_of_year(), 1);
    }
}
