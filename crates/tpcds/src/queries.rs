//! The workload catalog: the four data-mining queries the thesis selects
//! (Table 3.5 — Q7, Q21, Q46, Q50) with their per-scale predicate
//! parameters and the SQL text dsqgen would emit.
//!
//! "TPC-DS generates different query sets per dataset. The queries …
//! differ only in terms of the query predicate values" (Section 4.1.1):
//! [`QueryParams::for_scale`] is that substitution point.

use crate::dates::Date;

/// Identifies one of the four workload queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryId {
    Q7,
    Q21,
    Q46,
    Q50,
}

impl QueryId {
    /// All four, in thesis order.
    pub const ALL: [QueryId; 4] = [QueryId::Q7, QueryId::Q21, QueryId::Q46, QueryId::Q50];

    /// Display name ("Query 7").
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q7 => "Query 7",
            QueryId::Q21 => "Query 21",
            QueryId::Q46 => "Query 46",
            QueryId::Q50 => "Query 50",
        }
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Query 7 parameters (Fig 3.5).
#[derive(Clone, Debug, PartialEq)]
pub struct Q7Params {
    pub gender: &'static str,
    pub marital_status: &'static str,
    pub education_status: &'static str,
    pub year: i64,
}

/// Query 21 parameters (Fig 3.6).
#[derive(Clone, Debug, PartialEq)]
pub struct Q21Params {
    pub pivot_date: Date,
    pub window_days: i64,
    pub price_lo: f64,
    pub price_hi: f64,
}

/// Query 46 parameters (Fig 3.7).
#[derive(Clone, Debug, PartialEq)]
pub struct Q46Params {
    pub dep_count: i64,
    pub vehicle_count: i64,
    pub dows: [i64; 2],
    pub years: [i64; 3],
    pub cities: Vec<&'static str>,
}

/// Query 50 parameters (Fig 3.8).
#[derive(Clone, Debug, PartialEq)]
pub struct Q50Params {
    pub year: i64,
    pub moy: i64,
}

/// The full predicate set for one dataset scale.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryParams {
    pub q7: Q7Params,
    pub q21: Q21Params,
    pub q46: Q46Params,
    pub q50: Q50Params,
}

impl QueryParams {
    /// Predicates for a scale factor. The thesis's 1GB values are used
    /// for every scale; dsqgen's per-scale substitutions only reshuffle
    /// literals within the same distributions, and our generator keeps
    /// those distributions scale-invariant, so the fixed literals retain
    /// the intended selectivities.
    pub fn for_scale(_sf: f64) -> Self {
        QueryParams {
            q7: Q7Params {
                gender: "M",
                marital_status: "M",
                education_status: "4 yr Degree",
                year: 2001,
            },
            q21: Q21Params {
                pivot_date: Date::new(2002, 5, 29),
                window_days: 30,
                price_lo: 0.99,
                price_hi: 1.49,
            },
            q46: Q46Params {
                dep_count: 2,
                vehicle_count: 3,
                dows: [6, 0],
                years: [1998, 1999, 2000],
                cities: vec!["Midway", "Fairview"],
            },
            q50: Q50Params { year: 1998, moy: 10 },
        }
    }
}

/// The SQL text of a query, with this scale's parameters substituted —
/// what dsqgen would produce (Appendix A), and the input to the
/// `doclite-sql` parser.
pub fn sql_text(q: QueryId, p: &QueryParams) -> String {
    match q {
        QueryId::Q7 => format!(
            "select i_item_id,
        avg(ss_quantity) agg1,
        avg(ss_list_price) agg2,
        avg(ss_coupon_amt) agg3,
        avg(ss_sales_price) agg4
 from store_sales, customer_demographics, date_dim, item, promotion
 where ss_sold_date_sk = d_date_sk and
       ss_item_sk = i_item_sk and
       ss_cdemo_sk = cd_demo_sk and
       ss_promo_sk = p_promo_sk and
       cd_gender = '{}' and
       cd_marital_status = '{}' and
       cd_education_status = '{}' and
       (p_channel_email = 'N' or p_channel_event = 'N') and
       d_year = {}
 group by i_item_id
 order by i_item_id",
            p.q7.gender, p.q7.marital_status, p.q7.education_status, p.q7.year
        ),
        QueryId::Q21 => format!(
            "select *
 from(select w_warehouse_name
            ,i_item_id
            ,sum(case when (cast(d_date as date) < cast ('{pivot}' as date))
                 then inv_quantity_on_hand
                      else 0 end) as inv_before
            ,sum(case when (cast(d_date as date) >= cast ('{pivot}' as date))
                      then inv_quantity_on_hand
                      else 0 end) as inv_after
   from inventory
       ,warehouse
       ,item
       ,date_dim
   where i_current_price between {lo} and {hi}
     and i_item_sk          = inv_item_sk
     and inv_warehouse_sk   = w_warehouse_sk
     and inv_date_sk    = d_date_sk
     and d_date between (cast ('{pivot}' as date) - {w} days)
                    and (cast ('{pivot}' as date) + {w} days)
   group by w_warehouse_name, i_item_id) x
 where (case when inv_before > 0
             then inv_after / inv_before
             else null
             end) between 2.0/3.0 and 3.0/2.0
 order by w_warehouse_name
         ,i_item_id",
            pivot = p.q21.pivot_date.to_iso(),
            lo = p.q21.price_lo,
            hi = p.q21.price_hi,
            w = p.q21.window_days,
        ),
        QueryId::Q46 => format!(
            "select c_last_name
       ,c_first_name
       ,ca_city
       ,bought_city
       ,ss_ticket_number
       ,amt,profit
 from
   (select ss_ticket_number
          ,ss_customer_sk
          ,ca_city bought_city
          ,sum(ss_coupon_amt) amt
          ,sum(ss_net_profit) profit
    from store_sales,date_dim,store,household_demographics,customer_address
    where store_sales.ss_sold_date_sk = date_dim.d_date_sk
    and store_sales.ss_store_sk = store.s_store_sk
    and store_sales.ss_hdemo_sk = household_demographics.hd_demo_sk
    and store_sales.ss_addr_sk = customer_address.ca_address_sk
    and (household_demographics.hd_dep_count = {dep} or
         household_demographics.hd_vehicle_count= {veh})
    and date_dim.d_dow in ({dow0},{dow1})
    and date_dim.d_year in ({y0},{y1},{y2})
    and store.s_city in ('{c0}','{c1}','{c1}','{c1}','{c1}')
    group by ss_ticket_number,ss_customer_sk,ss_addr_sk,ca_city) dn,customer,customer_address current_addr
    where ss_customer_sk = c_customer_sk
      and customer.c_current_addr_sk = current_addr.ca_address_sk
      and current_addr.ca_city <> bought_city
  order by c_last_name
          ,c_first_name
          ,ca_city
          ,bought_city
          ,ss_ticket_number",
            dep = p.q46.dep_count,
            veh = p.q46.vehicle_count,
            dow0 = p.q46.dows[0],
            dow1 = p.q46.dows[1],
            y0 = p.q46.years[0],
            y1 = p.q46.years[1],
            y2 = p.q46.years[2],
            c0 = p.q46.cities[0],
            c1 = p.q46.cities[1],
        ),
        QueryId::Q50 => format!(
            "select
   s_store_name
  ,s_company_id
  ,s_street_number
  ,s_street_name
  ,s_street_type
  ,s_suite_number
  ,s_city
  ,s_county
  ,s_state
  ,s_zip
  ,sum(case when (sr_returned_date_sk - ss_sold_date_sk <= 30 ) then 1 else 0 end)  as \"30 days\"
  ,sum(case when (sr_returned_date_sk - ss_sold_date_sk > 30) and
                 (sr_returned_date_sk - ss_sold_date_sk <= 60) then 1 else 0 end )  as \"31-60 days\"
  ,sum(case when (sr_returned_date_sk - ss_sold_date_sk > 60) and
                 (sr_returned_date_sk - ss_sold_date_sk <= 90) then 1 else 0 end)  as \"61-90 days\"
  ,sum(case when (sr_returned_date_sk - ss_sold_date_sk > 90) and
                 (sr_returned_date_sk - ss_sold_date_sk <= 120) then 1 else 0 end)  as \"91-120 days\"
  ,sum(case when (sr_returned_date_sk - ss_sold_date_sk  > 120) then 1 else 0 end)  as \">120 days\"
from
   store_sales
  ,store_returns
  ,store
  ,date_dim d1
  ,date_dim d2
where
    d2.d_year = {y}
and d2.d_moy  = {m}
and ss_ticket_number = sr_ticket_number
and ss_item_sk = sr_item_sk
and ss_sold_date_sk   = d1.d_date_sk
and sr_returned_date_sk   = d2.d_date_sk
and ss_customer_sk = sr_customer_sk
and ss_store_sk = s_store_sk
group by
   s_store_name
  ,s_company_id
  ,s_street_number
  ,s_street_name
  ,s_street_type
  ,s_suite_number
  ,s_city
  ,s_county
  ,s_state
  ,s_zip
order by s_store_name
        ,s_company_id
        ,s_street_number
        ,s_street_name
        ,s_street_type
        ,s_suite_number
        ,s_city",
            y = p.q50.year,
            m = p.q50.moy,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_thesis_figures() {
        let p = QueryParams::for_scale(1.0);
        assert_eq!(p.q7.year, 2001);
        assert_eq!(p.q7.education_status, "4 yr Degree");
        assert_eq!(p.q21.pivot_date, Date::new(2002, 5, 29));
        assert_eq!(p.q46.dows, [6, 0]);
        assert_eq!(p.q46.years, [1998, 1999, 2000]);
        assert_eq!(p.q50.year, 1998);
        assert_eq!(p.q50.moy, 10);
    }

    #[test]
    fn sql_text_substitutes_parameters() {
        let p = QueryParams::for_scale(1.0);
        let q7 = sql_text(QueryId::Q7, &p);
        assert!(q7.contains("cd_education_status = '4 yr Degree'"));
        assert!(q7.contains("d_year = 2001"));
        let q21 = sql_text(QueryId::Q21, &p);
        assert!(q21.contains("'2002-05-29'"));
        assert!(q21.contains("between 0.99 and 1.49"));
        let q46 = sql_text(QueryId::Q46, &p);
        assert!(q46.contains("'Midway'"));
        let q50 = sql_text(QueryId::Q50, &p);
        assert!(q50.contains("d2.d_year = 1998"));
    }

    #[test]
    fn query_names() {
        assert_eq!(QueryId::Q7.to_string(), "Query 7");
        assert_eq!(QueryId::ALL.len(), 4);
    }
}
