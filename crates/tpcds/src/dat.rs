//! `.dat` file IO: the pipe-delimited flat files dsdgen emits and the
//! thesis's migration algorithm consumes (Section 4.1.1: "Each column
//! value for every record is delimited by the '|' operator").

use crate::gen::{Cell, Generator};
use crate::schema::TableId;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// The `.dat` file path for a table under a directory.
pub fn dat_path(dir: &Path, table: TableId) -> PathBuf {
    dir.join(format!("{}.dat", table.name()))
}

/// Writes one table's rows to `<dir>/<table>.dat`. Returns the number of
/// rows written.
pub fn write_table(dir: &Path, gen: &Generator, table: TableId) -> io::Result<u64> {
    std::fs::create_dir_all(dir)?;
    let file = File::create(dat_path(dir, table))?;
    let mut w = BufWriter::new(file);
    let mut n = 0;
    for row in gen.rows(table) {
        write_row(&mut w, &row)?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

fn write_row(w: &mut impl Write, row: &[Cell]) -> io::Result<()> {
    for (i, cell) in row.iter().enumerate() {
        if i > 0 {
            w.write_all(b"|")?;
        }
        w.write_all(cell.to_dat_field().as_bytes())?;
    }
    w.write_all(b"\n")
}

/// Writes all 24 tables; returns `(table, rows)` per table.
pub fn write_all(dir: &Path, gen: &Generator) -> io::Result<Vec<(TableId, u64)>> {
    TableId::ALL
        .iter()
        .map(|&t| write_table(dir, gen, t).map(|n| (t, n)))
        .collect()
}

/// A streaming reader over a `.dat` file's lines, each split on `|`.
/// Empty fields are surfaced as `None` (SQL NULL).
pub struct DatReader {
    lines: io::Lines<BufReader<File>>,
}

impl DatReader {
    /// Opens `<dir>/<table>.dat`.
    pub fn open(dir: &Path, table: TableId) -> io::Result<Self> {
        Self::open_path(&dat_path(dir, table))
    }

    /// Opens an arbitrary `.dat` file.
    pub fn open_path(path: &Path) -> io::Result<Self> {
        Ok(DatReader { lines: BufReader::new(File::open(path)?).lines() })
    }
}

impl Iterator for DatReader {
    type Item = io::Result<Vec<Option<String>>>;

    fn next(&mut self) -> Option<Self::Item> {
        let line = self.lines.next()?;
        Some(line.map(|l| {
            l.split('|')
                .map(|f| if f.is_empty() { None } else { Some(f.to_owned()) })
                .collect()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::table_def;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("doclite-dat-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_small_table() {
        let dir = tmpdir("roundtrip");
        let gen = Generator::new(0.001);
        let n = write_table(&dir, &gen, TableId::Warehouse).unwrap();
        assert_eq!(n, gen.row_count(TableId::Warehouse));

        let def = table_def(TableId::Warehouse);
        let rows: Vec<_> = DatReader::open(&dir, TableId::Warehouse)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(rows.len() as u64, n);
        for (i, fields) in rows.iter().enumerate() {
            assert_eq!(fields.len(), def.columns.len(), "row {i}");
            // PK column is never empty.
            assert!(fields[0].is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nulls_become_empty_fields() {
        let dir = tmpdir("nulls");
        let gen = Generator::new(0.002);
        write_table(&dir, &gen, TableId::StoreSales).unwrap();
        let has_null = DatReader::open(&dir, TableId::StoreSales)
            .unwrap()
            .map(|r| r.unwrap())
            .any(|fields| fields.iter().any(Option::is_none));
        assert!(has_null, "expected some NULL fields in store_sales");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_all_covers_24_tables() {
        let dir = tmpdir("all");
        let gen = Generator::new(0.0005);
        let written = write_all(&dir, &gen).unwrap();
        assert_eq!(written.len(), 24);
        for (t, n) in &written {
            assert_eq!(*n, gen.row_count(*t), "{t}");
            assert!(dat_path(&dir, *t).exists(), "{t}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
