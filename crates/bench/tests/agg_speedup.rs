//! Acceptance check: on a selective, index-backed leading-`$match`
//! pipeline the streaming executor beats the legacy materializing
//! executor by at least 2×. The real gap is far larger (the legacy
//! path clones all 50k documents; the streaming path index-scans ~500
//! and clones only survivors), so the 2× floor leaves plenty of head
//! room for noisy CI machines.

use doclite_bson::doc;
use doclite_docstore::{
    Accumulator, Collection, ExecMode, Expr, Filter, GroupId, IndexDef, Pipeline,
};
use std::time::Instant;

fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn streaming_beats_legacy_on_selective_indexed_match() {
    let coll = Collection::new("bench");
    coll.insert_many((0..50_000i64).map(|i| {
        doc! {"_id" => i, "k" => i, "grp" => i % 100, "v" => (i * 7 % 1000) as f64}
    }))
    .expect("insert");
    coll.create_index(IndexDef::single("grp")).expect("index");
    let p = Pipeline::new()
        .match_stage(Filter::eq("grp", 42i64))
        .group(
            GroupId::Expr(Expr::field("k")),
            [("avg_v", Accumulator::avg_field("v")), ("n", Accumulator::count())],
        )
        .sort([("_id", 1)])
        .limit(100);

    // Same results either way.
    let a = coll.aggregate_with_mode(&p, None, ExecMode::Legacy).unwrap();
    let b = coll.aggregate_with_mode(&p, None, ExecMode::Streaming).unwrap();
    assert_eq!(a, b);

    let legacy = best_of(7, || {
        coll.aggregate_with_mode(&p, None, ExecMode::Legacy).unwrap()
    });
    let streaming = best_of(7, || {
        coll.aggregate_with_mode(&p, None, ExecMode::Streaming).unwrap()
    });
    assert!(
        legacy >= 2.0 * streaming,
        "expected ≥2× speedup, got legacy {legacy:.6}s vs streaming {streaming:.6}s"
    );
}
