//! Ablation 11: columnar sidecar + vectorized batch kernel vs the
//! row-at-a-time streaming executor.
//!
//! Benchmarks the PR 7 columnar path on two Q7-shaped analytical
//! workloads over a collection *without* secondary indexes (so every
//! executor pays the same full scan and the delta is purely
//! row-matcher-vs-batch-kernel):
//!
//! * `match_scan` — selective `$match` → `$count`, the pure
//!   selection-bitmap case;
//! * `group_q7`   — `$match` → `$group` by `k` with `avg(v)`/count,
//!   the GroupKernel-over-selected-rows case.
//!
//! Each cell is timed as best-of-N against the serial streaming
//! baseline, with the columnar result asserted equal to the row result
//! before timing (per-cell result equality is the whole point of the
//! sidecar contract). A parallel-columnar cell sweeps the chunked
//! executor at `available_parallelism` workers. Written to
//! `reports/BENCH_columnar.json` and schema-validated before exit.
//! `DOCLITE_COLUMNAR_SMOKE=1` shrinks the dataset and rep count for CI.

use doclite_bson::{doc, Document};
use doclite_docstore::{Accumulator, Collection, ExecMode, Expr, Filter, GroupId, Pipeline};
use doclite_stress::report::{parse_json, Json};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag the validator pins.
const SCHEMA: &str = "doclite-columnar/v1";

/// Chunk size for the parallel-columnar cell; matches the default
/// morsel sizing used by `ExecMode::Columnar`.
const PAR_CHUNK: usize = 4096;

fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_docs(n: i64) -> Vec<Document> {
    (0..n)
        .map(|i| doc! {"_id" => i, "k" => i % 3000, "grp" => i % 100, "v" => (i * 7 % 1000) as f64})
        .collect()
}

struct Shape {
    name: &'static str,
    pipeline: Pipeline,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            name: "match_scan",
            pipeline: Pipeline::new().match_stage(Filter::eq("grp", 42i64)).count("n"),
        },
        Shape {
            name: "group_q7",
            pipeline: Pipeline::new().match_stage(Filter::gte("grp", 42i64)).group(
                GroupId::Expr(Expr::field("k")),
                [("avg_v", Accumulator::avg_field("v")), ("n", Accumulator::count())],
            ),
        },
    ]
}

fn main() {
    let smoke = std::env::var("DOCLITE_COLUMNAR_SMOKE").map(|v| v == "1").unwrap_or(false);
    let reps = if smoke { 2 } else { 7 };
    let n: i64 = if smoke { 20_000 } else { 400_000 };
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let par_workers = cores.clamp(1, 8);

    // Deliberately no secondary index: an index-served `$match` would
    // reorder the scan and hide the kernel-vs-matcher delta.
    let coll = Collection::new("bench_columnar");
    coll.insert_many(bench_docs(n)).expect("insert");
    coll.enable_columnar(["k", "grp", "v"]);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"docs\": {n},");

    let shapes = shapes();
    for (si, shape) in shapes.iter().enumerate() {
        let p = &shape.pipeline;
        // Row-at-a-time streaming is the 1.0× baseline.
        let expected = coll.aggregate_with_mode(p, None, ExecMode::Streaming).unwrap();
        let row_s =
            best_of(reps, || coll.aggregate_with_mode(p, None, ExecMode::Streaming).unwrap());

        // Result equality is asserted before each timed cell.
        let got = coll.aggregate_columnar_with(p, None, 1, usize::MAX).unwrap();
        assert_eq!(got, expected, "{}: serial columnar result diverged", shape.name);
        let col_s =
            best_of(reps, || coll.aggregate_columnar_with(p, None, 1, usize::MAX).unwrap());

        let got = coll.aggregate_columnar_with(p, None, par_workers, PAR_CHUNK).unwrap();
        assert_eq!(got, expected, "{}: parallel columnar result diverged", shape.name);
        let par_s = best_of(reps, || {
            coll.aggregate_columnar_with(p, None, par_workers, PAR_CHUNK).unwrap()
        });

        let _ = writeln!(json, "  \"{}\": {{", shape.name);
        let _ = writeln!(json, "    \"row_s\": {row_s:.6},");
        let _ = writeln!(json, "    \"columnar_s\": {col_s:.6},");
        let _ = writeln!(json, "    \"columnar_speedup\": {:.2},", row_s / col_s);
        let _ = writeln!(json, "    \"parallel_workers\": {par_workers},");
        let _ = writeln!(json, "    \"parallel_columnar_s\": {par_s:.6},");
        let _ = writeln!(json, "    \"parallel_columnar_speedup\": {:.2}", row_s / par_s);
        let _ = writeln!(json, "  }}{}", if si + 1 == shapes.len() { "" } else { "," });
    }
    json.push_str("}\n");

    validate_report(&json).expect("BENCH_columnar.json schema");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports/BENCH_columnar.json");
    std::fs::write(path, &json).expect("write report");
    println!("{json}");
    println!("wrote {path}");
}

/// Validates the emitted report: schema tag, both shapes present with
/// positive finite timings and speedups.
fn validate_report(text: &str) -> Result<(), String> {
    let root = parse_json(text)?;
    if root.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag must be '{SCHEMA}'"));
    }
    match root.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => return Err(format!("'mode' must be smoke|full, got {other:?}")),
    }
    for key in ["available_parallelism", "docs"] {
        let v = root.get(key).and_then(Json::as_num).ok_or(format!("'{key}' missing"))?;
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("'{key}' must be positive, got {v}"));
        }
    }
    for shape in ["match_scan", "group_q7"] {
        let section = root.get(shape).ok_or(format!("'{shape}' section missing"))?;
        for key in [
            "row_s",
            "columnar_s",
            "columnar_speedup",
            "parallel_workers",
            "parallel_columnar_s",
            "parallel_columnar_speedup",
        ] {
            let v = section
                .get(key)
                .and_then(Json::as_num)
                .ok_or(format!("'{shape}.{key}' missing"))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("'{shape}.{key}' must be positive, got {v}"));
            }
        }
    }
    Ok(())
}
