//! Aggregation-executor baseline: times the legacy materializing
//! executor against the streaming executor on the Q7-shaped micro
//! pipeline, measures the router's scatter-gather transfer for a
//! sorted+limited broadcast find, and writes the numbers to
//! `reports/BENCH_agg.json` so future changes have a perf trajectory.
//!
//! Run with `cargo run --release -p doclite-bench --bin bench_agg`.

use doclite_bson::doc;
use doclite_docstore::{
    Accumulator, Collection, ExecMode, Expr, Filter, FindOptions, GroupId, IndexDef, Pipeline,
};
use doclite_sharding::{NetworkModel, ShardKey, ShardedCluster};
use std::time::Instant;

/// Best-of-n wall time in seconds (the thesis reports best-of-5 with
/// warm caches; so do we).
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    // --- executor comparison on the Q7-shaped pipeline -------------
    let coll = Collection::new("bench");
    coll.insert_many((0..50_000i64).map(|i| {
        doc! {"_id" => i, "k" => i, "grp" => i % 100, "v" => (i * 7 % 1000) as f64}
    }))
    .expect("insert");
    coll.create_index(IndexDef::single("grp")).expect("index");
    let p = Pipeline::new()
        .match_stage(Filter::eq("grp", 42i64))
        .group(
            GroupId::Expr(Expr::field("k")),
            [("avg_v", Accumulator::avg_field("v")), ("n", Accumulator::count())],
        )
        .sort([("_id", 1)])
        .limit(100);
    let legacy = best_of(5, || {
        coll.aggregate_with_mode(&p, None, ExecMode::Legacy).unwrap()
    });
    let streaming = best_of(5, || {
        coll.aggregate_with_mode(&p, None, ExecMode::Streaming).unwrap()
    });
    let speedup = legacy / streaming;

    // --- router transfer for a sorted+limited broadcast find -------
    let cluster = ShardedCluster::new(3, "bench", NetworkModel::free());
    cluster
        .shard_collection("facts", ShardKey::hashed("k"), 64 * 1024)
        .expect("shard");
    cluster
        .router()
        .insert_many(
            "facts",
            (0..3000i64).map(|i| doc! {"k" => i, "v" => i, "pad" => "x".repeat(200)}),
        )
        .expect("load");
    let collection_bytes = cluster.router().collection_data_size("facts");
    cluster.router().net_stats().reset();
    let opts = FindOptions {
        sort: vec![("v".into(), 1)],
        limit: 10,
        ..FindOptions::default()
    };
    let docs = cluster.router().find_with("facts", &Filter::True, &opts);
    assert_eq!(docs.len(), 10);
    let transferred = cluster.router().net_stats().bytes() as usize;

    let json = format!(
        "{{\n  \"agg_q7_shape_50k\": {{\n    \"legacy_s\": {legacy:.6},\n    \
         \"streaming_s\": {streaming:.6},\n    \"speedup\": {speedup:.2}\n  }},\n  \
         \"router_sorted_limited_find\": {{\n    \"limit\": 10,\n    \
         \"bytes_transferred\": {transferred},\n    \
         \"collection_bytes\": {collection_bytes},\n    \
         \"fraction\": {:.6}\n  }}\n}}\n",
        transferred as f64 / collection_bytes as f64
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports/BENCH_agg.json");
    std::fs::write(path, &json).expect("write report");
    println!("{json}");
    println!("wrote {path}");
}
