//! Regenerates thesis Table 4.5: best-of-N query execution runtimes for
//! the six experiments of Table 4.1, with the paper's numbers printed
//! alongside and the Section 4.3 observations checked.
//!
//! Run with `cargo run --release -p doclite-bench --bin table_4_5`.
//! Knobs: `DOCLITE_SF_SMALL` / `DOCLITE_SF_LARGE` / `DOCLITE_RUNS`.

use doclite_bench::{print_shape_checks, runs, sf_large, sf_small, shape_checks, PAPER_TABLE_4_5};
use doclite_core::experiment::{run_experiment, ExperimentSpec, SetupOptions};
use doclite_core::{fmt_duration, TextTable};
use doclite_tpcds::QueryId;
use std::time::Duration;

fn main() {
    let specs = ExperimentSpec::table_4_1(sf_small(), sf_large());
    let opts = SetupOptions::default();
    let n_runs = runs();

    let mut measured: Vec<(u8, Vec<doclite_core::QueryTiming>)> = Vec::new();
    for spec in &specs {
        eprintln!("{} — {} (SF {})…", spec.label(), spec.describe(), spec.sf);
        let timings = run_experiment(spec, &opts, n_runs).expect("experiment");
        measured.push((spec.id, timings));
    }

    let mut t = TextTable::new(["", "Query 7", "Query 21", "Query 46", "Query 50"]);
    for (id, timings) in &measured {
        let mut cells = vec![format!("Experiment {id}")];
        for q in QueryId::ALL {
            let best = timings.iter().find(|x| x.query == q).expect("timed").best;
            cells.push(fmt_duration(best));
        }
        t.row(cells);
        // Paper row for comparison.
        let paper = PAPER_TABLE_4_5[*id as usize - 1];
        t.row([
            format!("  (paper, exp {id})"),
            fmt_duration(Duration::from_secs_f64(paper[0])),
            fmt_duration(Duration::from_secs_f64(paper[1])),
            fmt_duration(Duration::from_secs_f64(paper[2])),
            fmt_duration(Duration::from_secs_f64(paper[3])),
        ]);
    }
    println!("\nTable 4.5: Query Execution Runtimes (best of {n_runs}; measured vs paper)");
    println!("{}", t.render());

    let checks = shape_checks(&measured);
    let failures = print_shape_checks(&checks);
    println!(
        "\n{} of {} shape checks hold",
        checks.len() - failures,
        checks.len()
    );
    std::process::exit(i32::from(failures > 0));
}
