//! Regenerates thesis Table 4.4: query selectivity (result-set size in
//! MB) per query × dataset scale, with the paper's values alongside.
//!
//! Run with `cargo run --release -p doclite-bench --bin table_4_4`.

use doclite_bench::{sf_large, sf_small, PAPER_TABLE_4_4};
use doclite_core::experiment::{
    setup_environment, DataModel, Deployment, ExperimentSpec, SetupOptions,
};
use doclite_core::selectivity::measure;
use doclite_core::TextTable;
use doclite_tpcds::{QueryId, QueryParams};

fn main() {
    let opts = SetupOptions::default();
    let scales = [(sf_small(), "small", 3u8), (sf_large(), "large", 6u8)];

    let mut rows: Vec<(String, [f64; 4], usize)> = Vec::new();
    for (sf, tag, id) in scales {
        eprintln!("building denormalized environment at SF {sf} ({tag})…");
        let env = setup_environment(
            &ExperimentSpec {
                id,
                sf,
                model: DataModel::Denormalized,
                deployment: Deployment::Standalone,
            },
            &opts,
        )
        .expect("setup");
        let params = QueryParams::for_scale(sf);
        let mut mbs = [0.0f64; 4];
        let mut total_docs = 0;
        for (i, q) in QueryId::ALL.iter().enumerate() {
            let s = measure(&env, *q, &params, DataModel::Denormalized).expect("measure");
            mbs[i] = s.megabytes();
            total_docs += s.docs;
        }
        rows.push((format!("SF{sf}"), mbs, total_docs));
    }

    let mut t = TextTable::new(["", "Query 7", "Query 21", "Query 46", "Query 50"]);
    for (label, mbs, _) in &rows {
        t.row([
            label.clone(),
            format!("{:.4}MB", mbs[0]),
            format!("{:.4}MB", mbs[1]),
            format!("{:.4}MB", mbs[2]),
            format!("{:.4}MB", mbs[3]),
        ]);
    }
    for (i, label) in ["9.94GB (paper)", "41.93GB (paper)"].iter().enumerate() {
        let p = PAPER_TABLE_4_4[i];
        t.row([
            (*label).to_owned(),
            format!("{}MB", p[0]),
            format!("{}MB", p[1]),
            format!("{}MB", p[2]),
            format!("{}MB", p[3]),
        ]);
    }
    println!("\nTable 4.4: Query Selectivity (measured at reproduction scale vs paper)");
    println!("{}", t.render());

    // Shape: Q7/Q21/Q46 results grow with scale while Q50's stays flat
    // (bounded by stores × day-range buckets), and every result is a tiny
    // fraction of its dataset — the structure of the paper's Table 4.4.
    //
    // Known deviation: the paper's largest result is Query 46's; here it
    // is Query 7's, because dsdgen's store-city distribution is more
    // concentrated on Midway/Fairview than this generator's 20%-biased
    // pool, which shrinks Q46's qualifying ticket count relative to Q7's
    // line count. The growth ordering and orders of magnitude hold.
    let (small, large) = (&rows[0].1, &rows[1].1);
    let mut ok = true;
    for (i, q) in QueryId::ALL.iter().enumerate().take(3) {
        let holds = large[i] >= small[i];
        ok &= holds;
        println!(
            "  {} {q}: result grows with scale ({:.4} → {:.4} MB)",
            if holds { "✓" } else { "✗" },
            small[i],
            large[i]
        );
    }
    {
        let flat = (large[3] - small[3]).abs() <= small[3].max(0.001);
        ok &= flat;
        println!(
            "  {} Query 50: result stays flat across scales ({:.4} vs {:.4} MB), as in the paper's 0.003/0.003",
            if flat { "✓" } else { "✗" },
            small[3],
            large[3]
        );
    }
    std::process::exit(i32::from(!ok));
}
