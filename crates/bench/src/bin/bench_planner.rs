//! Ablation 14: plan quality — forced-rule vs cost-based planning
//! across a selectivity sweep.
//!
//! One Q7-shaped workload (`$match` → `$group` with count/avg) over a
//! collection with a secondary index on the predicate field, swept
//! across predicate selectivities from ~0.1% to ~90% of the rows. Each
//! cell is timed under the rule-based planner (any usable index prefix
//! wins, the pre-stats behaviour) and the cost-based planner, on both
//! the row-streaming and columnar executors, with per-cell result
//! equality asserted between the two planners before timing. The
//! cost model's row estimate is recorded against the measured
//! cardinality per cell.
//!
//! The interesting cells are the wide predicates: the rule planner
//! drags ~90% of the collection through the index (random fetch order,
//! row-at-a-time), while the cost planner takes the sequential full
//! scan — and under `ExecMode::Columnar` the vectorized kernel — which
//! is where the ≥2× separation comes from.
//!
//! Written to `reports/BENCH_planner.json` and schema-validated before
//! exit. `DOCLITE_PLANNER_SMOKE=1` shrinks the dataset and rep count
//! for CI; the estimation-error gate applies in both modes.

use doclite_bson::{doc, json::to_json, Document};
use doclite_core::selectivity::plan_quality;
use doclite_docstore::{
    set_planner_mode, Accumulator, Collection, ExecMode, Expr, Filter, GroupId, IndexDef,
    Pipeline, PlannerMode,
};
use doclite_stress::report::{parse_json, Json};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag the validator pins.
const SCHEMA: &str = "doclite-planner/v1";

/// CI gate: the cost model's row estimate must stay within this factor
/// of the measured cardinality on every swept shape.
const MAX_EST_ERROR: f64 = 8.0;

/// Full-run gate: the cost-based plan may not be slower than the
/// forced-rule plan beyond this timing-noise allowance.
const NOISE: f64 = 1.3;

fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// `k` takes 1000 distinct values uniformly, so `k < c` retrieves c/10
/// percent of the rows; `grp`/`v` feed the `$group`.
fn bench_docs(n: i64) -> Vec<Document> {
    (0..n)
        .map(|i| doc! {"_id" => i, "k" => i % 1000, "grp" => i % 50, "v" => (i * 7 % 100) as f64})
        .collect()
}

struct Shape {
    name: &'static str,
    filter: Filter,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape { name: "sel_0p1", filter: Filter::eq("k", 7i64) },
        Shape { name: "sel_1", filter: Filter::is_in("k", (0..10i64).collect::<Vec<_>>()) },
        Shape { name: "sel_10", filter: Filter::lt("k", 100i64) },
        Shape { name: "sel_50", filter: Filter::lt("k", 500i64) },
        Shape { name: "sel_90", filter: Filter::lt("k", 900i64) },
    ]
}

/// Canonical order for result-set comparison: group output order is an
/// executor detail (index order vs slab order), not a contract.
fn canon(mut docs: Vec<Document>) -> Vec<String> {
    let mut v: Vec<String> = docs.drain(..).map(|d| to_json(&d)).collect();
    v.sort();
    v
}

fn main() {
    let smoke = std::env::var("DOCLITE_PLANNER_SMOKE").map(|v| v == "1").unwrap_or(false);
    let reps = if smoke { 3 } else { 7 };
    let n: i64 = if smoke { 40_000 } else { 400_000 };

    let coll = Collection::new("bench_planner");
    coll.insert_many(bench_docs(n)).expect("insert");
    coll.create_index(IndexDef::single("k")).expect("index");
    coll.enable_columnar(["k", "grp", "v"]);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"docs\": {n},");

    let shapes = shapes();
    let execs = [("row", ExecMode::Streaming), ("col", ExecMode::Columnar)];
    let mut max_speedup = 0.0f64;
    let mut violations: Vec<String> = Vec::new();

    for (si, shape) in shapes.iter().enumerate() {
        let pipeline = Pipeline::new().match_stage(shape.filter.clone()).group(
            GroupId::Expr(Expr::field("grp")),
            [("n", Accumulator::count()), ("avg_v", Accumulator::avg_field("v"))],
        );

        // Estimation quality is a property of the shape, not the
        // executor; measured once under the cost planner.
        set_planner_mode(PlannerMode::Cost);
        let q = plan_quality(&coll, &shape.filter);
        let err = q.error_factor();

        let _ = writeln!(json, "  \"{}\": {{", shape.name);
        let _ = writeln!(json, "    \"est_rows\": {},", q.est_rows);
        let _ = writeln!(json, "    \"actual_rows\": {},", q.actual_rows);
        let _ = writeln!(json, "    \"est_row_error\": {err:.3},");

        for (ei, (ename, emode)) in execs.iter().enumerate() {
            set_planner_mode(PlannerMode::Rule);
            let expected = coll.aggregate_with_mode(&pipeline, None, *emode).unwrap();
            let rule_s =
                best_of(reps, || coll.aggregate_with_mode(&pipeline, None, *emode).unwrap());
            let rule_plan = coll.explain(&shape.filter).plan;

            set_planner_mode(PlannerMode::Cost);
            let got = coll.aggregate_with_mode(&pipeline, None, *emode).unwrap();
            assert_eq!(
                canon(got),
                canon(expected),
                "{}/{}: cost-based result diverged from forced-rule",
                shape.name,
                ename
            );
            let cost_s =
                best_of(reps, || coll.aggregate_with_mode(&pipeline, None, *emode).unwrap());
            let cost_plan = coll.explain(&shape.filter).plan;

            let speedup = rule_s / cost_s;
            max_speedup = max_speedup.max(speedup);
            if cost_s > rule_s * NOISE {
                violations.push(format!(
                    "{}/{}: cost {cost_s:.6}s vs rule {rule_s:.6}s",
                    shape.name, ename
                ));
            }

            let _ = writeln!(json, "    \"{ename}\": {{");
            let _ = writeln!(json, "      \"rule_s\": {rule_s:.6},");
            let _ = writeln!(json, "      \"cost_s\": {cost_s:.6},");
            let _ = writeln!(json, "      \"speedup\": {speedup:.2},");
            let _ = writeln!(json, "      \"rule_plan\": \"{rule_plan}\",");
            let _ = writeln!(json, "      \"cost_plan\": \"{cost_plan}\"");
            let _ = writeln!(json, "    }}{}", if ei + 1 == execs.len() { "" } else { "," });
        }
        let _ = writeln!(json, "  }}{}", if si + 1 == shapes.len() { "" } else { "," });
    }
    json.push_str("}\n");

    validate_report(&json).expect("BENCH_planner.json schema");

    // Acceptance gates. Timing-dependent gates are advisory in smoke
    // mode (CI machines are noisy); the full run enforces them.
    if !smoke {
        assert!(
            violations.is_empty(),
            "cost-based slower than forced-rule beyond noise: {violations:?}"
        );
        assert!(
            max_speedup >= 2.0,
            "expected >=2x on at least one wide shape, best was {max_speedup:.2}x"
        );
    } else if !violations.is_empty() {
        eprintln!("note (smoke): cells beyond noise allowance: {violations:?}");
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports/BENCH_planner.json");
    std::fs::write(path, &json).expect("write report");
    println!("{json}");
    println!("wrote {path}");
}

/// Validates the emitted report: schema tag, every swept shape present
/// with positive finite timings under both executors, and the
/// estimation-error gate (`MAX_EST_ERROR`) on every shape.
fn validate_report(text: &str) -> Result<(), String> {
    let root = parse_json(text)?;
    if root.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag must be '{SCHEMA}'"));
    }
    match root.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => return Err(format!("'mode' must be smoke|full, got {other:?}")),
    }
    let docs = root.get("docs").and_then(Json::as_num).ok_or("'docs' missing")?;
    if !(docs.is_finite() && docs > 0.0) {
        return Err(format!("'docs' must be positive, got {docs}"));
    }
    for shape in ["sel_0p1", "sel_1", "sel_10", "sel_50", "sel_90"] {
        let section = root.get(shape).ok_or(format!("'{shape}' section missing"))?;
        for key in ["est_rows", "actual_rows"] {
            let v = section
                .get(key)
                .and_then(Json::as_num)
                .ok_or(format!("'{shape}.{key}' missing"))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("'{shape}.{key}' must be positive, got {v}"));
            }
        }
        let err = section
            .get("est_row_error")
            .and_then(Json::as_num)
            .ok_or(format!("'{shape}.est_row_error' missing"))?;
        if !(err.is_finite() && (1.0..=MAX_EST_ERROR).contains(&err)) {
            return Err(format!(
                "'{shape}.est_row_error' {err} outside [1, {MAX_EST_ERROR}]"
            ));
        }
        for exec in ["row", "col"] {
            let cell = section.get(exec).ok_or(format!("'{shape}.{exec}' missing"))?;
            for key in ["rule_s", "cost_s", "speedup"] {
                let v = cell
                    .get(key)
                    .and_then(Json::as_num)
                    .ok_or(format!("'{shape}.{exec}.{key}' missing"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("'{shape}.{exec}.{key}' must be positive, got {v}"));
                }
            }
            for key in ["rule_plan", "cost_plan"] {
                let p = cell
                    .get(key)
                    .and_then(Json::as_str)
                    .ok_or(format!("'{shape}.{exec}.{key}' missing"))?;
                if p.is_empty() {
                    return Err(format!("'{shape}.{exec}.{key}' must be non-empty"));
                }
            }
        }
    }
    Ok(())
}
