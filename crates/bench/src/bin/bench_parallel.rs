//! Ablation 10: morsel-driven parallel execution — throughput vs worker
//! count and morsel size.
//!
//! Sweeps the PR 6 parallel executor over `workers × morsel_size` on
//! two analytical shapes (a Q7-style grouped aggregation and a top-k
//! `$sort` + `$limit`), against the serial streaming executor as the
//! 1.0× baseline. Written to `reports/BENCH_parallel.json` and
//! schema-validated before exit, like the other report binaries.
//!
//! On a single-core box the pool degrades to inline execution and every
//! ratio flattens to ~1.0×; the report records
//! `available_parallelism` so readers can tell a flat sweep from a
//! broken one. `DOCLITE_PARALLEL_SMOKE=1` shrinks the dataset and rep
//! count for CI.

use doclite_bson::{doc, Document};
use doclite_docstore::{
    set_parallel_morsel_size, set_parallel_workers, Accumulator, Collection, ExecMode, Expr,
    Filter, GroupId, IndexDef, Pipeline,
};
use doclite_stress::report::{parse_json, Json};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag the validator pins.
const SCHEMA: &str = "doclite-parallel/v1";

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
const MORSEL_SWEEP: [usize; 3] = [256, 1024, 4096];

fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_docs(n: i64) -> Vec<Document> {
    (0..n)
        .map(|i| doc! {"_id" => i, "k" => i % 3000, "grp" => i % 100, "v" => (i * 7 % 1000) as f64})
        .collect()
}

struct Shape {
    name: &'static str,
    pipeline: Pipeline,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            name: "group_q7",
            pipeline: Pipeline::new()
                .match_stage(Filter::gte("v", 100.0))
                .group(
                    GroupId::Expr(Expr::field("k")),
                    [("avg_v", Accumulator::avg_field("v")), ("n", Accumulator::count())],
                )
                .sort([("_id", 1)])
                .limit(100),
        },
        Shape {
            name: "topk_sort",
            pipeline: Pipeline::new()
                .match_stage(Filter::gte("v", 100.0))
                .sort([("v", -1), ("_id", 1)])
                .limit(50),
        },
    ]
}

fn main() {
    let smoke = std::env::var("DOCLITE_PARALLEL_SMOKE").map(|v| v == "1").unwrap_or(false);
    let reps = if smoke { 2 } else { 5 };
    let n: i64 = if smoke { 20_000 } else { 200_000 };
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);

    let coll = Collection::new("bench");
    coll.insert_many(bench_docs(n)).expect("insert");
    coll.create_index(IndexDef::single("grp")).expect("index");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"docs\": {n},");

    let shapes = shapes();
    for (si, shape) in shapes.iter().enumerate() {
        // Serial streaming is the 1.0× baseline every cell normalizes to.
        let expected =
            coll.aggregate_with_mode(&shape.pipeline, None, ExecMode::Streaming).unwrap();
        let serial_s = best_of(reps, || {
            coll.aggregate_with_mode(&shape.pipeline, None, ExecMode::Streaming).unwrap()
        });

        let _ = writeln!(json, "  \"{}\": {{", shape.name);
        let _ = writeln!(json, "    \"serial_s\": {serial_s:.6},");
        let _ = writeln!(json, "    \"cells\": [");
        let total = WORKER_SWEEP.len() * MORSEL_SWEEP.len();
        let mut cell = 0usize;
        for workers in WORKER_SWEEP {
            for morsel in MORSEL_SWEEP {
                set_parallel_workers(workers);
                set_parallel_morsel_size(morsel);
                let got = coll
                    .aggregate_with_mode(&shape.pipeline, None, ExecMode::Parallel)
                    .unwrap();
                assert_eq!(got, expected, "{}: parallel result diverged", shape.name);
                let s = best_of(reps, || {
                    coll.aggregate_with_mode(&shape.pipeline, None, ExecMode::Parallel).unwrap()
                });
                cell += 1;
                let _ = writeln!(
                    json,
                    "      {{\"workers\": {workers}, \"morsel\": {morsel}, \
                     \"parallel_s\": {s:.6}, \"speedup\": {:.2}}}{}",
                    serial_s / s,
                    if cell == total { "" } else { "," }
                );
            }
        }
        let _ = writeln!(json, "    ]");
        let _ = writeln!(json, "  }}{}", if si + 1 == shapes.len() { "" } else { "," });
    }
    json.push_str("}\n");
    set_parallel_workers(0);
    set_parallel_morsel_size(0);

    validate_report(&json).expect("BENCH_parallel.json schema");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports/BENCH_parallel.json");
    std::fs::write(path, &json).expect("write report");
    println!("{json}");
    println!("wrote {path}");
}

/// Validates the emitted report: schema tag, both shapes present, every
/// sweep cell with positive finite timings.
fn validate_report(text: &str) -> Result<(), String> {
    let root = parse_json(text)?;
    if root.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag must be '{SCHEMA}'"));
    }
    match root.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => return Err(format!("'mode' must be smoke|full, got {other:?}")),
    }
    for key in ["available_parallelism", "docs"] {
        let v = root.get(key).and_then(Json::as_num).ok_or(format!("'{key}' missing"))?;
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("'{key}' must be positive, got {v}"));
        }
    }
    for shape in ["group_q7", "topk_sort"] {
        let section = root.get(shape).ok_or(format!("'{shape}' section missing"))?;
        let serial = section
            .get("serial_s")
            .and_then(Json::as_num)
            .ok_or(format!("'{shape}.serial_s' missing"))?;
        if !(serial.is_finite() && serial > 0.0) {
            return Err(format!("'{shape}.serial_s' must be positive"));
        }
        let cells = match section.get("cells") {
            Some(Json::Arr(cells)) => cells,
            _ => return Err(format!("'{shape}.cells' must be an array")),
        };
        if cells.len() != WORKER_SWEEP.len() * MORSEL_SWEEP.len() {
            return Err(format!(
                "'{shape}.cells' must have {} entries, got {}",
                WORKER_SWEEP.len() * MORSEL_SWEEP.len(),
                cells.len()
            ));
        }
        for (i, cell) in cells.iter().enumerate() {
            for key in ["workers", "morsel", "parallel_s", "speedup"] {
                let v = cell
                    .get(key)
                    .and_then(Json::as_num)
                    .ok_or(format!("'{shape}.cells[{i}].{key}' missing"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("'{shape}.cells[{i}].{key}' must be positive, got {v}"));
                }
            }
        }
    }
    Ok(())
}
