//! Regenerates thesis Figure 4.10: query execution times at the small
//! scale (the paper's 9.94 GB dataset) across the three setups, as
//! grouped ASCII bars.
//!
//! Run with `cargo run --release -p doclite-bench --bin fig_4_10`.

use doclite_bench::figures::render_figure;
use doclite_bench::sf_small;

fn main() {
    let ok = render_figure(sf_small(), [1, 2, 3], "Figure 4.10");
    std::process::exit(i32::from(!ok));
}
