//! Regenerates thesis Figure 4.9: total data load time for the two
//! dataset scales, rendered as an ASCII bar chart.
//!
//! Run with `cargo run --release -p doclite-bench --bin fig_4_9`.

use doclite_bench::{sf_large, sf_small, PAPER_TOTAL_LOAD_SECS};
use doclite_core::{fmt_duration, migrate_all};
use doclite_docstore::Database;
use doclite_tpcds::Generator;
use std::time::Duration;

fn total_load(sf: f64, tag: &str) -> Duration {
    let dir = std::env::temp_dir().join(format!("doclite-f49-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gen = Generator::new(sf);
    eprintln!("generating + migrating 24 tables at SF {sf}…");
    doclite_tpcds::write_all(&dir, &gen).expect("dsdgen");
    let db = Database::new(format!("Dataset_{tag}"));
    let total = migrate_all(&db, &dir)
        .expect("migrate")
        .iter()
        .map(|r| r.elapsed)
        .sum();
    let _ = std::fs::remove_dir_all(&dir);
    total
}

fn bar(label: &str, value: Duration, max: Duration) -> String {
    let width = 48;
    let n = ((value.as_secs_f64() / max.as_secs_f64()) * width as f64).round() as usize;
    format!("{label:<22} {} {}", "█".repeat(n.max(1)), fmt_duration(value))
}

fn main() {
    let (small_sf, large_sf) = (sf_small(), sf_large());
    let small = total_load(small_sf, "small");
    let large = total_load(large_sf, "large");
    let max = small.max(large);

    println!("\nFigure 4.9: Comparison of Data Load Times (reproduction scale)");
    println!("{}", bar(&format!("SF{small_sf} dataset"), small, max));
    println!("{}", bar(&format!("SF{large_sf} dataset"), large, max));

    println!("\npaper (absolute):");
    let paper_max = Duration::from_secs_f64(PAPER_TOTAL_LOAD_SECS[1]);
    println!(
        "{}",
        bar("9.94GB dataset", Duration::from_secs_f64(PAPER_TOTAL_LOAD_SECS[0]), paper_max)
    );
    println!(
        "{}",
        bar("41.93GB dataset", Duration::from_secs_f64(PAPER_TOTAL_LOAD_SECS[1]), paper_max)
    );

    let measured_ratio = large.as_secs_f64() / small.as_secs_f64();
    let paper_ratio = PAPER_TOTAL_LOAD_SECS[1] / PAPER_TOTAL_LOAD_SECS[0];
    println!(
        "\nload-time ratio large/small: measured {measured_ratio:.2}x, paper {paper_ratio:.2}x"
    );
    let ok = measured_ratio > 1.5;
    println!(
        "{} larger dataset takes proportionally longer to load",
        if ok { "✓" } else { "✗" }
    );
    std::process::exit(i32::from(!ok));
}
