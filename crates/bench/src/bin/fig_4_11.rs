//! Regenerates thesis Figure 4.11: query execution times at the large
//! scale (the paper's 41.93 GB dataset) across the three setups, as
//! grouped ASCII bars.
//!
//! Run with `cargo run --release -p doclite-bench --bin fig_4_11`.

use doclite_bench::figures::render_figure;
use doclite_bench::sf_large;

fn main() {
    let ok = render_figure(sf_large(), [4, 5, 6], "Figure 4.11");
    std::process::exit(i32::from(!ok));
}
