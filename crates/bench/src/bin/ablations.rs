//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. index vs. collection scan for the dimension-filter step;
//! 2. hashed vs. range sharding for `store_sales` (distribution, jumbo
//!    chunks, and targetability — thesis Section 2.1.3.3);
//! 3. one `$in` semi-join vs. per-key point queries (Fig 4.8 step ii);
//! 4. parallel vs. sequential scatter-gather (the thesis's future-work
//!    multithreading suggestion);
//! 5. embedding only aggregation-relevant dimensions vs. all dimensions
//!    (the Fig 4.8 step-iii optimization);
//! 6. streaming vs. legacy aggregation executor on a Q7-shaped
//!    pipeline (the process-wide [`set_default_exec_mode`] toggle);
//! 7. durability cost and recovery time: WAL sync-policy overhead on a
//!    bulk load, and crash-recovery time against checkpoint freshness
//!    (full WAL replay vs checkpoint + tail vs fresh checkpoint).
//!
//! Run with `cargo run --release -p doclite-bench --bin ablations`.

use doclite_bench::sf_small;
use doclite_core::denormalize::embed_documents_from;
use doclite_core::experiment::{
    setup_environment, DataModel, Deployment, ExperimentSpec, SetupOptions,
};
use doclite_core::queries::{filter_dim_pks, semi_join_into};
use doclite_core::store::Store;
use doclite_core::{fmt_duration, TextTable};
use doclite_docstore::{
    set_default_exec_mode, Accumulator, Database, DurableDb, ExecMode, Expr, Filter, GroupId,
    IndexDef, Pipeline, SyncPolicy, WalOptions,
};
use doclite_sharding::{NetworkModel, ScatterMode, ShardKey, ShardedCluster};
use doclite_tpcds::{Generator, QueryParams, TableId};
use std::time::Instant;

fn time<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

fn main() {
    let sf = sf_small();
    let params = QueryParams::for_scale(sf);
    println!("ablations at SF {sf}\n");

    ablation_dim_index(sf, &params);
    ablation_shard_key(sf);
    ablation_semi_join(sf, &params);
    ablation_scatter_mode(sf);
    ablation_embed_scope(sf, &params);
    ablation_exec_mode(sf);
    ablation_durability(sf);
}

/// 1. Dimension filtering with and without a secondary index.
fn ablation_dim_index(sf: f64, params: &QueryParams) {
    let db = Database::new("abl1");
    let gen = Generator::new(sf);
    doclite_core::load_table_direct(&db, &gen, TableId::DateDim).expect("load");
    let filter = Filter::eq("d_year", params.q7.year);

    let (pks, scan) = time(|| filter_dim_pks(&db, "date_dim", &filter, "d_date_sk"));
    db.collection("date_dim").create_index(IndexDef::single("d_year")).expect("index");
    let (pks_ix, ix) = time(|| filter_dim_pks(&db, "date_dim", &filter, "d_date_sk"));
    assert_eq!(pks.len(), pks_ix.len());

    let mut t = TextTable::new(["dimension filter (date_dim, d_year)", "time", "rows"]);
    t.row(["collection scan".to_owned(), fmt_duration(scan), pks.len().to_string()]);
    t.row(["single-field index".to_owned(), fmt_duration(ix), pks_ix.len().to_string()]);
    println!("{}", t.render());
}

/// 2. Range vs hashed shard key for store_sales.
fn ablation_shard_key(sf: f64) {
    let gen = Generator::new(sf);
    let mut t = TextTable::new([
        "shard key",
        "chunks",
        "jumbo",
        "max/min docs per shard",
        "eq targeted?",
        "range targeted?",
    ]);
    for (label, key) in [
        ("range(ss_ticket_number)", ShardKey::range(["ss_ticket_number"])),
        ("hashed(ss_ticket_number)", ShardKey::hashed("ss_ticket_number")),
        ("range(ss_store_sk) [low card]", ShardKey::range(["ss_store_sk"])),
    ] {
        let cluster = ShardedCluster::new(3, "abl2", NetworkModel::free());
        cluster
            .shard_collection("store_sales", key, 256 * 1024)
            .expect("shard");
        cluster
            .router()
            .insert_many(
                "store_sales",
                gen.documents(TableId::StoreSales).collect::<Vec<_>>(),
            )
            .expect("load");
        cluster.balance().expect("balance");
        let meta = cluster.router().config().meta("store_sales").expect("meta");
        let per_shard: Vec<usize> = cluster
            .router()
            .shards()
            .iter()
            .map(|s| s.db().get_collection("store_sales").map(|c| c.len()).unwrap_or(0))
            .collect();
        let eq = cluster
            .router()
            .explain_targeting("store_sales", &Filter::eq("ss_ticket_number", 10i64));
        let range = cluster.router().explain_targeting(
            "store_sales",
            &Filter::between("ss_ticket_number", 10i64, 50i64),
        );
        t.row([
            label.to_owned(),
            meta.chunks.len().to_string(),
            meta.chunks.iter().filter(|c| c.jumbo).count().to_string(),
            format!(
                "{}/{}",
                per_shard.iter().max().expect("shards"),
                per_shard.iter().min().expect("shards")
            ),
            (eq.is_targeted() && eq.shards().len() == 1).to_string(),
            (range.is_targeted() && range.shards().len() < 3).to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// 3. Semi-join via one $in vs per-key point queries.
fn ablation_semi_join(sf: f64, params: &QueryParams) {
    let db = Database::new("abl3");
    let gen = Generator::new(sf);
    for t in [TableId::StoreSales, TableId::DateDim] {
        doclite_core::load_table_direct(&db, &gen, t).expect("load");
    }
    let date_pks = filter_dim_pks(
        &db,
        "date_dim",
        &Filter::eq("d_year", params.q7.year),
        "d_date_sk",
    );

    let (n_in, via_in) = time(|| {
        semi_join_into(&db, "store_sales", &[("ss_sold_date_sk", &date_pks)], Filter::True, "i1")
            .expect("semi-join")
    });
    let (n_pt, via_points) = time(|| {
        db.drop_collection("i2");
        let mut n = 0;
        for pk in &date_pks {
            let mut docs = db.find("store_sales", &Filter::eq("ss_sold_date_sk", pk.clone()));
            for d in &mut docs {
                d.remove("_id");
            }
            n += Store::insert_many(&db, "i2", docs).expect("insert");
        }
        n
    });
    assert_eq!(n_in, n_pt);

    let mut t = TextTable::new(["fact semi-join (365 date keys)", "time", "rows"]);
    t.row(["single $in filter".to_owned(), fmt_duration(via_in), n_in.to_string()]);
    t.row([
        format!("{} point queries", date_pks.len()),
        fmt_duration(via_points),
        n_pt.to_string(),
    ]);
    println!("{}", t.render());
}

/// 4. Parallel vs sequential scatter-gather on a broadcast find.
fn ablation_scatter_mode(sf: f64) {
    let gen = Generator::new(sf);
    let mut results = Vec::new();
    for mode in [ScatterMode::Parallel, ScatterMode::Sequential] {
        let mut cluster = ShardedCluster::new(3, "abl4", NetworkModel::free());
        cluster
            .shard_collection("store_sales", ShardKey::range(["ss_ticket_number"]), 256 * 1024)
            .expect("shard");
        cluster
            .router()
            .insert_many(
                "store_sales",
                gen.documents(TableId::StoreSales).collect::<Vec<_>>(),
            )
            .expect("load");
        cluster.balance().expect("balance");
        cluster.router_mut().set_scatter_mode(mode);
        // Broadcast: predicate not on the shard key.
        let (n, took) = time(|| {
            cluster
                .router()
                .find("store_sales", &Filter::gt("ss_quantity", 50i64))
                .len()
        });
        results.push((format!("{mode:?}"), took, n));
    }
    let mut t = TextTable::new(["scatter-gather (broadcast find)", "time", "rows"]);
    for (label, took, n) in results {
        t.row([label, fmt_duration(took), n.to_string()]);
    }
    println!("{}", t.render());
}

/// 5. Embed only the aggregation-relevant dimension vs every dimension.
fn ablation_embed_scope(sf: f64, params: &QueryParams) {
    let env = setup_environment(
        &ExperimentSpec {
            id: 0,
            sf,
            model: DataModel::Normalized,
            deployment: Deployment::Standalone,
        },
        &SetupOptions { network: NetworkModel::free(), max_chunk_size: 1 << 20, ..SetupOptions::default() },
    )
    .expect("setup");
    let store = env.store();

    // Build the Q7 intermediate once.
    let cd_pks = filter_dim_pks(
        store,
        "customer_demographics",
        &Filter::and([
            Filter::eq("cd_gender", params.q7.gender),
            Filter::eq("cd_marital_status", params.q7.marital_status),
            Filter::eq("cd_education_status", params.q7.education_status),
        ]),
        "cd_demo_sk",
    );
    let date_pks = filter_dim_pks(
        store,
        "date_dim",
        &Filter::eq("d_year", params.q7.year),
        "d_date_sk",
    );

    let embeds_relevant: [(&str, TableId, &str); 1] = [("ss_item_sk", TableId::Item, "i_item_sk")];
    let embeds_all: [(&str, TableId, &str); 4] = [
        ("ss_item_sk", TableId::Item, "i_item_sk"),
        ("ss_cdemo_sk", TableId::CustomerDemographics, "cd_demo_sk"),
        ("ss_sold_date_sk", TableId::DateDim, "d_date_sk"),
        ("ss_promo_sk", TableId::Promotion, "p_promo_sk"),
    ];

    let mut t = TextTable::new(["Q7 embedding scope", "time", "dims embedded"]);
    for (label, embeds) in [
        ("aggregation-relevant only (thesis)", &embeds_relevant[..]),
        ("every joined dimension", &embeds_all[..]),
    ] {
        semi_join_into(
            store,
            "store_sales",
            &[("ss_cdemo_sk", &cd_pks), ("ss_sold_date_sk", &date_pks)],
            Filter::exists("ss_item_sk"),
            "abl5_intermediate",
        )
        .expect("semi-join");
        let (n, took) = time(|| {
            let mut n = 0;
            for (field, dim, pk) in embeds {
                store
                    .create_index("abl5_intermediate", IndexDef::single(*field))
                    .expect("index");
                let dims = store.find(dim.name(), &Filter::True);
                n += embed_documents_from(store, "abl5_intermediate", field, pk, dims)
                    .expect("embed")
                    .dim_docs;
            }
            n
        });
        t.row([label.to_owned(), fmt_duration(took), n.to_string()]);
    }
    println!("{}", t.render());
}

/// 6. Streaming vs legacy aggregation executor, toggled through the
///    process-wide default the `Database::aggregate` path consults.
fn ablation_exec_mode(sf: f64) {
    let db = Database::new("abl6");
    let gen = Generator::new(sf);
    doclite_core::load_table_direct(&db, &gen, TableId::StoreSales).expect("load");
    db.collection("store_sales")
        .create_index(IndexDef::single("ss_store_sk"))
        .expect("index");
    // Q7-shaped tail over one store's sales: selective indexed $match,
    // $group with averages, $sort, $limit.
    let p = Pipeline::new()
        .match_stage(Filter::eq("ss_store_sk", 1i64))
        .group(
            GroupId::Expr(Expr::field("ss_item_sk")),
            [
                ("avg_qty", Accumulator::avg_field("ss_quantity")),
                ("n", Accumulator::count()),
            ],
        )
        .sort([("_id", 1)])
        .limit(100);

    let mut t = TextTable::new(["aggregation executor (Q7-shaped tail)", "time", "rows"]);
    for (label, mode) in [
        ("legacy (materializing)", ExecMode::Legacy),
        ("streaming (index-backed)", ExecMode::Streaming),
    ] {
        set_default_exec_mode(mode);
        let (rows, took) = time(|| db.aggregate("store_sales", &p).expect("aggregate").len());
        t.row([label.to_owned(), fmt_duration(took), rows.to_string()]);
    }
    set_default_exec_mode(ExecMode::default());
    println!("{}", t.render());
}

/// 7. What durability costs, and what buys recovery time back.
///
/// Part one loads `store_sales` in 256-document batches under each WAL
/// sync policy (plus a no-WAL baseline): group commit makes even
/// `Always` pay one fsync per *batch*, not per document. Part two
/// crashes (drops without sealing) a loaded store and times
/// `DurableDb::open` against checkpoint freshness — the recovery-time
/// ablation EXPERIMENTS.md discusses.
fn ablation_durability(sf: f64) {
    let gen = Generator::new(sf);
    let docs: Vec<_> = gen.documents(TableId::StoreSales).collect();
    let scratch = std::env::temp_dir().join(format!("doclite_abl7_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let load = |handle: &DurableDb| {
        let coll = handle.db().collection("store_sales");
        for batch in docs.chunks(256) {
            coll.insert_many(batch.to_vec()).expect("insert");
        }
    };

    let mut t = TextTable::new(["WAL sync policy (bulk load)", "time", "log bytes"]);
    let (_, baseline) = time(|| {
        let db = Database::new("abl7_base");
        for batch in docs.chunks(256) {
            db.collection("store_sales").insert_many(batch.to_vec()).expect("insert");
        }
    });
    t.row(["no WAL (in-memory)".to_owned(), fmt_duration(baseline), "0".to_owned()]);
    for (label, sync) in [
        ("Never (crash-consistent file)", SyncPolicy::Never),
        ("EveryN(64) commits", SyncPolicy::EveryN(64)),
        ("Always (group commit/batch)", SyncPolicy::Always),
    ] {
        let dir = scratch.join(label.split(' ').next().expect("label"));
        let (handle, _) = DurableDb::open("abl7", &dir, WalOptions { sync, faults: None })
            .expect("open");
        let (_, took) = time(|| load(&handle));
        let log_bytes =
            std::fs::metadata(handle.wal().path()).map(|m| m.len()).unwrap_or(0);
        t.row([label.to_owned(), fmt_duration(took), log_bytes.to_string()]);
    }
    println!("{}", t.render());

    let mut t = TextTable::new([
        "recovery vs checkpoint freshness",
        "frames replayed",
        "ckpt docs",
        "recovery time",
    ]);
    for (label, checkpoint_at) in [
        ("no checkpoint (full replay)", None),
        ("checkpoint at half the load", Some(docs.len() / 2)),
        ("fresh checkpoint (empty tail)", Some(docs.len())),
    ] {
        let dir = scratch.join(format!("rec_{}", label.split(' ').next().expect("label")));
        let opts = WalOptions { sync: SyncPolicy::EveryN(64), faults: None };
        let (handle, _) = DurableDb::open("abl7r", &dir, opts.clone()).expect("open");
        let coll = handle.db().collection("store_sales");
        let mut written = 0usize;
        for batch in docs.chunks(256) {
            coll.insert_many(batch.to_vec()).expect("insert");
            written += batch.len();
            if checkpoint_at.is_some_and(|at| written >= at && written - batch.len() < at) {
                handle.checkpoint().expect("checkpoint");
            }
        }
        // Simulated crash: drop without sealing, then recover.
        drop(handle);
        let ((recovered, report), took) =
            time(|| DurableDb::open("abl7r", &dir, opts.clone()).expect("recover"));
        assert_eq!(
            recovered.db().get_collection("store_sales").expect("recovered").len(),
            docs.len()
        );
        t.row([
            label.to_owned(),
            report.frames_replayed.to_string(),
            report.checkpoint_docs.to_string(),
            fmt_duration(took),
        ]);
    }
    println!("{}", t.render());
    let _ = std::fs::remove_dir_all(&scratch);
}
