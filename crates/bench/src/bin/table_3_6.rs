//! Regenerates thesis Table 3.6: number of records per table for the
//! two dataset scales — exact at SF1/SF5 by construction, plus the
//! bench-scale counts actually used in this reproduction.
//!
//! Run with `cargo run --release -p doclite-bench --bin table_3_6`.

use doclite_bench::{sf_large, sf_small};
use doclite_core::TextTable;
use doclite_tpcds::{row_count, Generator, TableId, TABLE_3_6};

fn main() {
    let (small, large) = (sf_small(), sf_large());

    let mut t = TextTable::new([
        "Table",
        "1GB (paper)",
        "SF1 (model)",
        "5GB (paper)",
        "SF5 (model)",
        &format!("SF{small} (bench)"),
        &format!("SF{large} (bench)"),
    ]);
    let mut exact = true;
    for (table, c1, c5) in TABLE_3_6 {
        let m1 = row_count(table, 1.0);
        let m5 = row_count(table, 5.0);
        exact &= m1 == c1 && m5 == c5;
        t.row([
            table.name().to_owned(),
            c1.to_string(),
            m1.to_string(),
            c5.to_string(),
            m5.to_string(),
            row_count(table, small).to_string(),
            row_count(table, large).to_string(),
        ]);
    }
    println!("Table 3.6: Table Details for Datasets 1GB and 5GB");
    println!("{}", t.render());
    println!(
        "model reproduces the paper's counts at SF1/SF5: {}",
        if exact { "✓ exact" } else { "✗ MISMATCH" }
    );

    // Verify the generator would actually emit these counts.
    let gen = Generator::new(small);
    assert_eq!(gen.row_count(TableId::StoreSales), row_count(TableId::StoreSales, small));
    println!(
        "\nbench-scale ratio store_sales large/small: {:.2} (paper's 5GB/1GB ≈ {:.2})",
        row_count(TableId::StoreSales, large) as f64
            / row_count(TableId::StoreSales, small) as f64,
        14_400_052f64 / 2_880_404f64
    );
    assert!(exact, "count model must anchor Table 3.6 exactly");
}
