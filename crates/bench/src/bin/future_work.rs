//! The thesis's future-work scenarios (Section 5.2), measured:
//!
//! 1. **Denormalized model on the sharded cluster** — "the denormalized
//!    data model can be deployed on the sharded cluster and its
//!    performance can be studied": the denormalized fact collections are
//!    resharded by the same keys as their normalized counterparts and
//!    the four queries run through the router.
//! 2. **Multithreaded dimension filtering** — "individual threads can be
//!    used to query each collection in parallel": Query 7's step-i
//!    filters run one thread per dimension.
//!
//! Run with `cargo run --release -p doclite-bench --bin future_work`.

use doclite_bench::{runs, sf_small};
use doclite_core::experiment::{
    setup_environment, time_query, DataModel, Deployment, Environment, ExperimentSpec,
    SetupOptions,
};
use doclite_core::queries::q7;
use doclite_core::{fmt_duration, TextTable};
use doclite_sharding::ShardKey;
use doclite_tpcds::{QueryId, QueryParams};
use std::time::Instant;

fn main() {
    let sf = sf_small();
    let params = QueryParams::for_scale(sf);
    let opts = SetupOptions::default();
    let n_runs = runs();

    // ---- 1. denormalized on sharded ------------------------------------
    eprintln!("building denormalized stand-alone environment (SF {sf})…");
    let standalone = setup_environment(
        &ExperimentSpec { id: 7, sf, model: DataModel::Denormalized, deployment: Deployment::Standalone },
        &opts,
    )
    .expect("standalone setup");

    eprintln!("building denormalized sharded environment (SF {sf})…");
    let sharded = setup_environment(
        &ExperimentSpec { id: 8, sf, model: DataModel::Denormalized, deployment: Deployment::Sharded },
        &opts,
    )
    .expect("sharded setup");
    // Reshard the denormalized facts so they actually live across the
    // cluster (they were materialized on the primary shard).
    let router = sharded.cluster().expect("sharded").router();
    router
        .reshard_collection("store_sales_dn", ShardKey::range(["ss_ticket_number"]), opts.max_chunk_size)
        .expect("reshard ss_dn");
    router
        .reshard_collection("inventory_dn", ShardKey::hashed("inv_warehouse_sk"), opts.max_chunk_size)
        .expect("reshard inv_dn");

    let mut t = TextTable::new(["", "Query 7", "Query 21", "Query 46", "Query 50"]);
    for (label, env) in [("Denorm / Stand-alone", &standalone), ("Denorm / Sharded", &sharded)] {
        let mut cells = vec![label.to_owned()];
        for q in QueryId::ALL {
            let timing =
                time_query(env, q, &params, DataModel::Denormalized, n_runs).expect("query");
            cells.push(fmt_duration(timing.best));
        }
        t.row(cells);
    }
    println!("\nFuture work 1: denormalized data model, stand-alone vs sharded (best of {n_runs})");
    println!("{}", t.render());

    // Both environments must agree on answers.
    for q in QueryId::ALL {
        let a = doclite_core::run_denormalized(standalone.store(), q, &params).expect("standalone");
        let b = doclite_core::run_denormalized(sharded.store(), q, &params).expect("sharded");
        assert_eq!(a.len(), b.len(), "{q}: deployments disagree");
    }
    println!("✓ both deployments return identical result counts for all four queries\n");

    // ---- 2. multithreaded dimension filtering --------------------------
    let norm: Environment = setup_environment(
        &ExperimentSpec { id: 9, sf, model: DataModel::Normalized, deployment: Deployment::Standalone },
        &opts,
    )
    .expect("normalized setup");

    let bench = |f: &dyn Fn() -> usize| {
        let mut best = std::time::Duration::MAX;
        let mut rows = 0;
        for _ in 0..n_runs {
            let t0 = Instant::now();
            rows = f();
            best = best.min(t0.elapsed());
        }
        (best, rows)
    };
    let (seq, rows_a) =
        bench(&|| q7::run_normalized(norm.store(), &params.q7).expect("seq").len());
    let (par, rows_b) =
        bench(&|| q7::run_normalized_parallel(norm.store(), &params.q7).expect("par").len());
    assert_eq!(rows_a, rows_b, "parallel variant changed the answer");

    let mut t = TextTable::new(["Query 7 (normalized)", "best time", "rows"]);
    t.row(["single thread (thesis)".to_owned(), fmt_duration(seq), rows_a.to_string()]);
    t.row(["thread per dimension (5.2)".to_owned(), fmt_duration(par), rows_b.to_string()]);
    println!("Future work 2: multithreaded dimension filtering");
    println!("{}", t.render());
}
