//! Regenerates thesis Table 4.3: per-table data load times for the two
//! dataset scales, via the full `.dat` → migration path, plus the
//! Section 4.3 load-time observations as checks.
//!
//! Run with `cargo run --release -p doclite-bench --bin table_4_3`.

use doclite_bench::{sf_large, sf_small};
use doclite_core::{fmt_duration, migrate_all, MigrationReport, TextTable};
use doclite_docstore::Database;
use doclite_tpcds::{Generator, TableId};
use std::path::PathBuf;

fn load_at(sf: f64, tag: &str) -> Vec<MigrationReport> {
    let dir: PathBuf = std::env::temp_dir().join(format!("doclite-t43-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gen = Generator::new(sf);
    eprintln!("generating .dat files at SF {sf}…");
    doclite_tpcds::write_all(&dir, &gen).expect("dsdgen");
    eprintln!("migrating 24 tables at SF {sf}…");
    let db = Database::new(format!("Dataset_{tag}"));
    let reports = migrate_all(&db, &dir).expect("migration");
    let _ = std::fs::remove_dir_all(&dir);
    reports
}

fn main() {
    let (small_sf, large_sf) = (sf_small(), sf_large());
    let small = load_at(small_sf, "small");
    let large = load_at(large_sf, "large");

    let mut t = TextTable::new([
        "TPC-DS Data File",
        &format!("SF{small_sf} rows"),
        &format!("SF{small_sf} load"),
        &format!("SF{large_sf} rows"),
        &format!("SF{large_sf} load"),
    ]);
    let mut total_small = std::time::Duration::ZERO;
    let mut total_large = std::time::Duration::ZERO;
    for (s, l) in small.iter().zip(large.iter()) {
        assert_eq!(s.table, l.table);
        total_small += s.elapsed;
        total_large += l.elapsed;
        t.row([
            s.table.name().to_owned(),
            s.rows.to_string(),
            fmt_duration(s.elapsed),
            l.rows.to_string(),
            fmt_duration(l.elapsed),
        ]);
    }
    t.row([
        "TOTAL".to_owned(),
        String::new(),
        fmt_duration(total_small),
        String::new(),
        fmt_duration(total_large),
    ]);
    println!("Table 4.3: Data Load Times (reproduction scale)");
    println!("{}", t.render());
    println!(
        "paper totals: 47m20.14s (1GB→9.94GB) and 3h31m53.72s (5GB→41.93GB)\n"
    );

    // Observation (i): equal-count tables load in comparable time.
    println!("Section 4.3 load-time observations:");
    let by_table = |rs: &[MigrationReport], t: TableId| {
        rs.iter().find(|r| r.table == t).expect("present").clone()
    };
    let mut ok = true;
    for t in [TableId::IncomeBand, TableId::ShipMode, TableId::HouseholdDemographics] {
        let (s, l) = (by_table(&small, t), by_table(&large, t));
        let same_rows = s.rows == l.rows;
        let ratio = l.elapsed.as_secs_f64() / s.elapsed.as_secs_f64().max(1e-9);
        let holds = same_rows && (0.2..=5.0).contains(&ratio);
        ok &= holds;
        println!(
            "  {} {}: equal rows ({}) load within 5x ({:.2}x)",
            if holds { "✓" } else { "✗" },
            t.name(),
            s.rows,
            ratio
        );
    }
    // Observation (ii): for scaling tables, load-time ratio tracks the
    // row-count ratio.
    for t in [TableId::StoreSales, TableId::Inventory, TableId::CatalogSales] {
        let (s, l) = (by_table(&small, t), by_table(&large, t));
        let row_ratio = l.rows as f64 / s.rows as f64;
        let time_ratio = l.elapsed.as_secs_f64() / s.elapsed.as_secs_f64().max(1e-9);
        let holds = (time_ratio / row_ratio - 1.0).abs() < 1.0; // within 2x of proportional
        ok &= holds;
        println!(
            "  {} {}: time ratio {:.2}x tracks row ratio {:.2}x",
            if holds { "✓" } else { "✗" },
            t.name(),
            time_ratio,
            row_ratio
        );
    }
    // Inventory dominates the total load at both scales, as in the paper.
    for (rs, label) in [(&small, "small"), (&large, "large")] {
        let inv = by_table(rs, TableId::Inventory).elapsed;
        let max_other = rs
            .iter()
            .filter(|r| r.table != TableId::Inventory)
            .map(|r| r.elapsed)
            .max()
            .expect("non-empty");
        let holds = inv >= max_other;
        ok &= holds;
        println!(
            "  {} inventory is the slowest load at the {label} scale ({} vs next {})",
            if holds { "✓" } else { "✗" },
            fmt_duration(inv),
            fmt_duration(max_other)
        );
    }
    std::process::exit(i32::from(!ok));
}
