//! Execution-kernel baseline: interpreted evaluation vs the
//! compile-once kernel, per shape, written to
//! `reports/BENCH_kernel.json` and schema-validated before the process
//! exits (CI runs the smoke mode the same way it runs the stress
//! smoke).
//!
//! Four measurements:
//!
//! * `match_scan` — a Q7-shaped residual filter (equality + range +
//!   small `$in`) swept over a document vector: the interpreted matcher
//!   (`query::matches`, which re-splits paths and clones multikey
//!   elements per call) vs `compile` once + `matches_compiled`.
//! * `semi_join_in` — a ~2000-key `$in` probe per document: interpreted
//!   linear scan vs the kernel's sorted-set binary search.
//! * `pipeline_q7` / `pipeline_semi_join` — end-to-end aggregation in
//!   all three executor modes (legacy, streaming, and the PR 6
//!   morsel-parallel executor); tracked here so the end-to-end win over
//!   the PR 4-era `BENCH_agg.json` stays pinned. Parallel numbers on a
//!   single-core box degrade to the streaming path (the pool runs
//!   inline) — the multicore sweep lives in `bench_parallel`.
//!
//! Run with `cargo run --release -p doclite-bench --bin bench_kernel`;
//! set `DOCLITE_KERNEL_SMOKE=1` for the fast CI configuration.

use doclite_bson::{doc, Document};
use doclite_docstore::query::{compile, matches, matches_compiled};
use doclite_docstore::{
    Accumulator, Collection, ExecMode, Expr, Filter, GroupId, IndexDef, Pipeline,
};
use doclite_stress::report::{parse_json, Json};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag the validator pins. v2 added `parallel_s` /
/// `parallel_speedup` to the pipeline sections (PR 6's morsel-driven
/// executor).
const SCHEMA: &str = "doclite-kernel/v2";

/// Best-of-n wall time in seconds (the thesis reports best-of-5 with
/// warm caches; so do we — smoke mode drops to best-of-2).
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_docs(n: i64) -> Vec<Document> {
    (0..n)
        .map(|i| doc! {"_id" => i, "k" => i % 3000, "grp" => i % 100, "v" => (i * 7 % 1000) as f64})
        .collect()
}

/// One interpreted-vs-kernel cell.
struct Cell {
    name: &'static str,
    docs: usize,
    interpreted_s: f64,
    kernel_s: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.interpreted_s / self.kernel_s
    }
}

fn main() {
    let smoke = std::env::var("DOCLITE_KERNEL_SMOKE").map(|v| v == "1").unwrap_or(false);
    let reps = if smoke { 2 } else { 5 };
    let scan_n: i64 = if smoke { 20_000 } else { 200_000 };
    let pipe_n: i64 = if smoke { 5_000 } else { 50_000 };

    // --- match_scan: Q7-shaped residual over a document sweep -------
    let docs = bench_docs(scan_n);
    let filter = Filter::and([
        Filter::eq("grp", 42i64),
        Filter::gte("v", 100.0),
        Filter::is_in("k", [42i64, 142, 242, 342, 442]),
    ]);
    let compiled = compile(&filter);
    let interp_hits: usize = docs.iter().filter(|d| matches(&filter, d)).count();
    let kernel_hits: usize = docs.iter().filter(|d| matches_compiled(&compiled, d)).count();
    assert_eq!(interp_hits, kernel_hits, "evaluators disagree on match_scan");
    assert!(interp_hits > 0, "match_scan filter selects nothing");
    let match_scan = Cell {
        name: "match_scan",
        docs: docs.len(),
        interpreted_s: best_of(reps, || {
            docs.iter().filter(|d| matches(&filter, d)).count()
        }),
        kernel_s: best_of(reps, || {
            docs.iter().filter(|d| matches_compiled(&compiled, d)).count()
        }),
    };

    // --- semi_join_in: ~2000-key $in probe per document -------------
    let keys: Vec<i64> = (0..2000i64).map(|i| i * 3 % 3000).collect();
    let in_filter = Filter::is_in("k", keys.clone());
    let in_compiled = compile(&in_filter);
    let a: usize = docs.iter().filter(|d| matches(&in_filter, d)).count();
    let b: usize = docs.iter().filter(|d| matches_compiled(&in_compiled, d)).count();
    assert_eq!(a, b, "evaluators disagree on semi_join_in");
    let semi_join = Cell {
        name: "semi_join_in",
        docs: docs.len(),
        interpreted_s: best_of(reps, || {
            docs.iter().filter(|d| matches(&in_filter, d)).count()
        }),
        kernel_s: best_of(reps, || {
            docs.iter().filter(|d| matches_compiled(&in_compiled, d)).count()
        }),
    };

    // --- end-to-end pipelines in both executor modes ----------------
    let coll = Collection::new("bench");
    coll.insert_many(bench_docs(pipe_n)).expect("insert");
    coll.create_index(IndexDef::single("grp")).expect("index");

    let q7 = Pipeline::new()
        .match_stage(Filter::eq("grp", 42i64))
        .group(
            GroupId::Expr(Expr::field("k")),
            [("avg_v", Accumulator::avg_field("v")), ("n", Accumulator::count())],
        )
        .sort([("_id", 1)])
        .limit(100);
    let q7_legacy = best_of(reps, || {
        coll.aggregate_with_mode(&q7, None, ExecMode::Legacy).unwrap()
    });
    let q7_streaming = best_of(reps, || {
        coll.aggregate_with_mode(&q7, None, ExecMode::Streaming).unwrap()
    });
    let q7_parallel = best_of(reps, || {
        coll.aggregate_with_mode(&q7, None, ExecMode::Parallel).unwrap()
    });

    let semi = Pipeline::new()
        .match_stage(Filter::is_in("k", keys))
        .group(
            GroupId::Expr(Expr::field("grp")),
            [("n", Accumulator::count()), ("sum_v", Accumulator::sum_field("v"))],
        )
        .sort([("_id", 1)]);
    let semi_legacy = best_of(reps, || {
        coll.aggregate_with_mode(&semi, None, ExecMode::Legacy).unwrap()
    });
    let semi_streaming = best_of(reps, || {
        coll.aggregate_with_mode(&semi, None, ExecMode::Streaming).unwrap()
    });
    let semi_parallel = best_of(reps, || {
        coll.aggregate_with_mode(&semi, None, ExecMode::Parallel).unwrap()
    });

    // --- report -----------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    for cell in [&match_scan, &semi_join] {
        let _ = writeln!(
            json,
            "  \"{}\": {{\n    \"docs\": {},\n    \"interpreted_s\": {:.6},\n    \
             \"kernel_s\": {:.6},\n    \"speedup\": {:.2}\n  }},",
            cell.name,
            cell.docs,
            cell.interpreted_s,
            cell.kernel_s,
            cell.speedup()
        );
    }
    for (name, legacy, streaming, parallel) in [
        ("pipeline_q7", q7_legacy, q7_streaming, q7_parallel),
        ("pipeline_semi_join", semi_legacy, semi_streaming, semi_parallel),
    ] {
        let _ = writeln!(
            json,
            "  \"{}\": {{\n    \"docs\": {},\n    \"legacy_s\": {:.6},\n    \
             \"streaming_s\": {:.6},\n    \"parallel_s\": {:.6},\n    \
             \"speedup\": {:.2},\n    \"parallel_speedup\": {:.2}\n  }}{}",
            name,
            pipe_n,
            legacy,
            streaming,
            parallel,
            legacy / streaming,
            streaming / parallel,
            if name == "pipeline_semi_join" { "" } else { "," }
        );
    }
    json.push_str("}\n");

    validate_report(&json).expect("BENCH_kernel.json schema");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports/BENCH_kernel.json");
    std::fs::write(path, &json).expect("write report");
    println!("{json}");
    println!("wrote {path}");
}

fn section_num(root: &Json, section: &str, key: &str) -> Result<f64, String> {
    root.get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_num)
        .ok_or_else(|| format!("'{section}.{key}' must be a number"))
}

/// Validates the emitted report: schema tag, all four sections with
/// positive timings, and finite speedups.
fn validate_report(text: &str) -> Result<(), String> {
    let root = parse_json(text)?;
    if root.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag must be '{SCHEMA}'"));
    }
    match root.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => return Err(format!("'mode' must be smoke|full, got {other:?}")),
    }
    for section in ["match_scan", "semi_join_in"] {
        for key in ["docs", "interpreted_s", "kernel_s", "speedup"] {
            let v = section_num(&root, section, key)?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("'{section}.{key}' must be positive, got {v}"));
            }
        }
    }
    for section in ["pipeline_q7", "pipeline_semi_join"] {
        for key in [
            "docs",
            "legacy_s",
            "streaming_s",
            "parallel_s",
            "speedup",
            "parallel_speedup",
        ] {
            let v = section_num(&root, section, key)?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("'{section}.{key}' must be positive, got {v}"));
            }
        }
    }
    Ok(())
}
