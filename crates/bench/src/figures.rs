//! Shared renderer for Figures 4.10 / 4.11: grouped ASCII bars of query
//! execution time across the three setups at one scale.

use crate::runs;
use doclite_core::experiment::{run_experiment, ExperimentSpec, SetupOptions};
use doclite_core::fmt_duration;
use doclite_tpcds::QueryId;
use std::time::Duration;

/// Runs experiments `ids = [sharded, standalone, denormalized]` at one
/// scale and renders the figure. Returns whether the paper's shape holds.
pub fn render_figure(scale_sf: f64, ids: [u8; 3], figure: &str) -> bool {
    let opts = SetupOptions::default();
    let all = ExperimentSpec::table_4_1(scale_sf, scale_sf);
    let series = [
        ("Denormalized / Stand-alone", ids[2]),
        ("Normalized / Stand-alone", ids[1]),
        ("Normalized / Sharded", ids[0]),
    ];

    let mut measured: Vec<(String, Vec<Duration>)> = Vec::new();
    for (label, id) in series {
        let spec = all.iter().find(|s| s.id == id).expect("id in matrix");
        eprintln!("{figure}: running experiment {id} ({label})…");
        let timings = run_experiment(spec, &opts, runs()).expect("experiment");
        let best: Vec<Duration> = QueryId::ALL
            .iter()
            .map(|q| timings.iter().find(|t| t.query == *q).expect("timed").best)
            .collect();
        measured.push((label.to_owned(), best));
    }

    let max = measured
        .iter()
        .flat_map(|(_, ds)| ds.iter().copied())
        .max()
        .expect("non-empty");
    println!("\n{figure}: A Comparison of Query Execution Times (SF {scale_sf})");
    for (qi, q) in QueryId::ALL.iter().enumerate() {
        println!("{q}:");
        for (label, ds) in &measured {
            let width = 44;
            let n = ((ds[qi].as_secs_f64() / max.as_secs_f64()) * width as f64).round() as usize;
            println!("  {label:<28} {} {}", "▇".repeat(n.max(1)), fmt_duration(ds[qi]));
        }
    }

    // Shape: denormalized fastest everywhere; stand-alone beats sharded
    // for Q7/Q21/Q46; Query 50 inverts. Comparisons carry a small noise
    // tolerance (15 ms + 15%) — several cells are tens of
    // milliseconds at reproduction scale, where scheduler jitter on a
    // single-core box exceeds the true difference.
    let beats = |a: Duration, b: Duration| {
        a <= b.mul_f64(1.15) + Duration::from_millis(15)
    };
    let mut ok = true;
    for qi in 0..4 {
        ok &= beats(measured[0].1[qi], measured[1].1[qi])
            && beats(measured[0].1[qi], measured[2].1[qi]);
    }
    for qi in 0..3 {
        ok &= beats(measured[1].1[qi], measured[2].1[qi]);
    }
    ok &= beats(measured[2].1[3], measured[1].1[3]);
    println!(
        "\n{} figure shape matches the paper (denormalized fastest; sharded slowest for \
         Q7/Q21/Q46; Query 50 inverted)",
        if ok { "✓" } else { "✗" }
    );
    ok
}
