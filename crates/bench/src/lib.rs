//! Shared harness for the report binaries and criterion benches: scale
//! factors, the paper's published numbers (for side-by-side printing),
//! and shape checks.
//!
//! Absolute runtimes are not expected to match the paper — its substrate
//! was a 5-node EC2 cluster with EBS disks, ours is an in-process
//! simulator — but the *shape* must hold; [`ShapeCheck`] encodes each of
//! the Section 4.3 observations as an assertion over measured data.

pub mod figures;

use doclite_core::experiment::QueryTiming;
use doclite_tpcds::QueryId;
use std::time::Duration;

/// Scale factor standing in for the paper's 1 GB dataset
/// (`DOCLITE_SF_SMALL`, default 0.01 — `store_sales` ≈ 28.8k rows).
pub fn sf_small() -> f64 {
    env_f64("DOCLITE_SF_SMALL", 0.01)
}

/// Scale factor standing in for the paper's 5 GB dataset
/// (`DOCLITE_SF_LARGE`, default 0.05 — the paper's 1:5 ratio).
pub fn sf_large() -> f64 {
    env_f64("DOCLITE_SF_LARGE", 0.05)
}

/// Timed runs per query (`DOCLITE_RUNS`, default 5 as in the thesis).
pub fn runs() -> usize {
    env_f64("DOCLITE_RUNS", 5.0) as usize
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The paper's Table 4.5 (query execution runtimes, seconds), rows =
/// experiments 1–6, columns = Q7, Q21, Q46, Q50.
pub const PAPER_TABLE_4_5: [[f64; 4]; 6] = [
    [15.71, 33.77, 198.00, 26.08],  // Exp 1: 9.94GB normalized sharded
    [7.30, 26.84, 63.93, 52.61],    // Exp 2: 9.94GB normalized stand-alone
    [0.62, 0.17, 3.43, 1.25],       // Exp 3: 9.94GB denormalized stand-alone
    [37.02, 159.00, 665.00, 117.00],// Exp 4: 41.93GB normalized sharded
    [22.55, 107.00, 376.00, 276.00],// Exp 5: 41.93GB normalized stand-alone
    [2.71, 0.52, 11.12, 5.12],      // Exp 6: 41.93GB denormalized stand-alone
];

/// The paper's Table 4.4 (query selectivity, MB), rows = {9.94GB,
/// 41.93GB}, columns = Q7, Q21, Q46, Q50.
pub const PAPER_TABLE_4_4: [[f64; 4]; 2] = [
    [0.60, 0.34, 2.48, 0.003],
    [2.28, 1.55, 11.84, 0.003],
];

/// The paper's total data load times (Fig 4.9): 47m20.14s and
/// 3h31m53.72s.
pub const PAPER_TOTAL_LOAD_SECS: [f64; 2] = [2840.14, 12_713.72];

/// One shape observation from thesis Section 4.3, checkable against
/// measured timings.
#[derive(Clone, Debug)]
pub struct ShapeCheck {
    pub description: String,
    pub holds: bool,
}

fn best(timings: &[QueryTiming], q: QueryId) -> Duration {
    timings
        .iter()
        .find(|t| t.query == q)
        .map(|t| t.best)
        .expect("query timed")
}

/// `a` beats (or effectively ties) `b`, within a noise floor of
/// 15 ms + 15% — several cells are tens of milliseconds at reproduction
/// scale, where scheduler jitter on a single-core box exceeds the true
/// difference (the orderings are decisive at the larger scale).
fn beats(a: Duration, b: Duration) -> bool {
    a <= b.mul_f64(1.15) + Duration::from_millis(15)
}

/// Evaluates the Section 4.3 observations over the measured matrix
/// (indexed by experiment id 1–6).
pub fn shape_checks(measured: &[(u8, Vec<QueryTiming>)]) -> Vec<ShapeCheck> {
    let get = |id: u8| -> &Vec<QueryTiming> {
        &measured.iter().find(|(i, _)| *i == id).expect("experiment present").1
    };
    let mut checks = Vec::new();

    // (i) Denormalized stand-alone is fastest per scale, for every query.
    for (denorm, others, scale) in [(3u8, [1u8, 2u8], "small"), (6, [4, 5], "large")] {
        for q in QueryId::ALL {
            let d = best(get(denorm), q);
            let holds = others.iter().all(|&o| beats(d, best(get(o), q)));
            checks.push(ShapeCheck {
                description: format!(
                    "{q} ({scale}): denormalized (exp {denorm}) fastest"
                ),
                holds,
            });
        }
    }

    // (ii) Normalized stand-alone beats normalized sharded for Q7/21/46.
    for (sharded, standalone, scale) in [(1u8, 2u8, "small"), (4, 5, "large")] {
        for q in [QueryId::Q7, QueryId::Q21, QueryId::Q46] {
            checks.push(ShapeCheck {
                description: format!(
                    "{q} ({scale}): stand-alone (exp {standalone}) beats sharded (exp {sharded})"
                ),
                holds: beats(best(get(standalone), q), best(get(sharded), q)),
            });
        }
    }

    // (iii) Q50 inverts: sharded beats stand-alone (shard-key predicate).
    for (sharded, standalone, scale) in [(1u8, 2u8, "small"), (4, 5, "large")] {
        checks.push(ShapeCheck {
            description: format!(
                "Query 50 ({scale}): sharded (exp {sharded}) beats stand-alone (exp {standalone})"
            ),
            holds: beats(
                best(get(sharded), QueryId::Q50),
                best(get(standalone), QueryId::Q50),
            ),
        });
    }
    checks
}

/// Prints shape checks with ✓/✗ markers; returns the failure count.
pub fn print_shape_checks(checks: &[ShapeCheck]) -> usize {
    let mut failures = 0;
    println!("shape checks (thesis Section 4.3 observations):");
    for c in checks {
        let mark = if c.holds { "✓" } else { "✗" };
        if !c.holds {
            failures += 1;
        }
        println!("  {mark} {}", c.description);
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // The index walks columns across several rows at once; iterator
    // zips would obscure the row/column structure.
    #[allow(clippy::needless_range_loop)]
    fn paper_constants_have_expected_shape() {
        // The paper's own data satisfies its own observations.
        for q in 0..4 {
            assert!(PAPER_TABLE_4_5[2][q] < PAPER_TABLE_4_5[0][q]);
            assert!(PAPER_TABLE_4_5[2][q] < PAPER_TABLE_4_5[1][q]);
            assert!(PAPER_TABLE_4_5[5][q] < PAPER_TABLE_4_5[3][q]);
            assert!(PAPER_TABLE_4_5[5][q] < PAPER_TABLE_4_5[4][q]);
        }
        for q in 0..3 {
            assert!(PAPER_TABLE_4_5[1][q] < PAPER_TABLE_4_5[0][q]);
            assert!(PAPER_TABLE_4_5[4][q] < PAPER_TABLE_4_5[3][q]);
        }
        // Q50 inversion.
        assert!(PAPER_TABLE_4_5[0][3] < PAPER_TABLE_4_5[1][3]);
        assert!(PAPER_TABLE_4_5[3][3] < PAPER_TABLE_4_5[4][3]);
    }

    #[test]
    fn scale_factors_keep_paper_ratio_by_default() {
        // Don't read env here (tests may run with overrides); check the
        // defaults directly.
        assert!((0.05 / 0.01 - 5.0f64).abs() < 1e-9);
    }
}
