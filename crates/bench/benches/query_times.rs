//! Criterion benches behind Table 4.5 / Figures 4.10–4.11: the four
//! workload queries against each setup of the experiment matrix, at a
//! small fixed scale (full-scale sweeps live in the report binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use doclite_core::experiment::{
    run_query_once, setup_environment, DataModel, Deployment, Environment, ExperimentSpec,
    SetupOptions,
};
use doclite_tpcds::{QueryId, QueryParams};
use std::hint::black_box;

const SF: f64 = 0.005;

fn env_for(model: DataModel, deployment: Deployment) -> Environment {
    setup_environment(
        &ExperimentSpec { id: 0, sf: SF, model, deployment },
        &SetupOptions::default(),
    )
    .expect("setup")
}

fn bench_queries(c: &mut Criterion) {
    let params = QueryParams::for_scale(SF);
    let setups = [
        ("denorm_standalone", env_for(DataModel::Denormalized, Deployment::Standalone), DataModel::Denormalized),
        ("norm_standalone", env_for(DataModel::Normalized, Deployment::Standalone), DataModel::Normalized),
        ("norm_sharded", env_for(DataModel::Normalized, Deployment::Sharded), DataModel::Normalized),
    ];
    for (name, env, model) in &setups {
        let mut g = c.benchmark_group(format!("query/{name}"));
        g.sample_size(10);
        for q in QueryId::ALL {
            g.bench_function(format!("{q}").replace(' ', "_"), |b| {
                b.iter(|| {
                    let (docs, _) = run_query_once(env, q, &params, *model).expect("query");
                    black_box(docs)
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
