//! Criterion benches behind Table 4.3 / Figure 4.9: the `.dat` →
//! collection migration path, per representative table and end to end.
//!
//! Full-scale numbers come from the report binaries
//! (`--bin table_4_3`, `--bin fig_4_9`); these benches track the
//! migration path's per-row cost at a small fixed scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use doclite_core::migrate::{header_map, line_to_document, migrate_table};
use doclite_docstore::Database;
use doclite_tpcds::{Generator, TableId};
use std::path::PathBuf;

const SF: f64 = 0.002;

fn datdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("doclite-bench-load-{}", std::process::id()));
    if !dir.join("store_sales.dat").exists() {
        let gen = Generator::new(SF);
        for t in [TableId::StoreSales, TableId::DateDim, TableId::Warehouse] {
            doclite_tpcds::write_table(&dir, &gen, t).expect("dat");
        }
    }
    dir
}

fn bench_line_parse(c: &mut Criterion) {
    let header = header_map(TableId::StoreSales);
    let gen = Generator::new(SF);
    let row = gen.row(TableId::StoreSales, 7);
    let fields: Vec<Option<String>> = row
        .iter()
        .map(|cell| {
            let s = cell.to_dat_field();
            if s.is_empty() {
                None
            } else {
                Some(s)
            }
        })
        .collect();
    c.bench_function("migrate/line_to_document", |b| {
        b.iter(|| {
            std::hint::black_box(line_to_document(TableId::StoreSales, &header, &fields))
        })
    });
}

fn bench_migrate_tables(c: &mut Criterion) {
    let dir = datdir();
    let mut g = c.benchmark_group("migrate/table");
    g.sample_size(10);
    for t in [TableId::StoreSales, TableId::DateDim, TableId::Warehouse] {
        g.bench_function(t.name(), |b| {
            b.iter_batched(
                || Database::new("bench"),
                |db| migrate_table(&db, &dir, t).expect("migrate"),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_direct_load(c: &mut Criterion) {
    let gen = Generator::new(SF);
    let mut g = c.benchmark_group("load_direct");
    g.sample_size(10);
    g.bench_function("store_sales", |b| {
        b.iter_batched(
            || Database::new("bench"),
            |db| doclite_core::load_table_direct(&db, &gen, TableId::StoreSales).expect("load"),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_line_parse, bench_migrate_tables, bench_direct_load);
criterion_main!(benches);
