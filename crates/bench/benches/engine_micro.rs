//! Criterion micro-benchmarks of the document-store engine: the codec,
//! filter evaluation (interpreted vs compiled), indexed vs scanned
//! lookups, and the aggregation pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use doclite_bson::{codec, doc, Document, Value};
use doclite_docstore::query::matcher::{compile, matches, matches_compiled};
use doclite_docstore::{
    Accumulator, Collection, ExecMode, Expr, Filter, GroupId, IndexDef, Pipeline,
};
use std::hint::black_box;

fn sample_doc() -> Document {
    doc! {
        "ss_sold_date_sk" => 2_450_815i64,
        "ss_item_sk" => 1234i64,
        "ss_customer_sk" => 999i64,
        "ss_quantity" => 42i64,
        "ss_list_price" => 35.99f64,
        "ss_coupon_amt" => 0.0f64,
        "store" => doc!{"s_city" => "Midway", "s_state" => "OH"},
        "tags" => Value::Array(vec![Value::from("a"), Value::from("b")]),
    }
}

fn bench_codec(c: &mut Criterion) {
    let d = sample_doc();
    let bytes = codec::encode_document(&d);
    c.bench_function("codec/encode", |b| {
        b.iter(|| black_box(codec::encode_document(black_box(&d))))
    });
    c.bench_function("codec/decode", |b| {
        b.iter(|| black_box(codec::decode_document(black_box(&bytes)).unwrap()))
    });
    c.bench_function("codec/encoded_size", |b| {
        b.iter(|| black_box(codec::encoded_size(black_box(&d))))
    });
}

fn bench_matcher(c: &mut Criterion) {
    let d = sample_doc();
    // A wide $in — the semi-join shape the compiled path exists for.
    let values: Vec<Value> = (0..2000i64).map(Value::Int64).collect();
    let filter = Filter::and([
        Filter::In { path: "ss_customer_sk".into(), values },
        Filter::eq("store.s_city", "Midway"),
    ]);
    c.bench_function("matcher/interpreted_wide_in", |b| {
        b.iter(|| black_box(matches(black_box(&filter), black_box(&d))))
    });
    let compiled = compile(&filter);
    c.bench_function("matcher/compiled_wide_in", |b| {
        b.iter(|| black_box(matches_compiled(black_box(&compiled), black_box(&d))))
    });
}

fn seeded_collection(n: i64) -> Collection {
    let coll = Collection::new("bench");
    coll.insert_many((0..n).map(|i| {
        doc! {"_id" => i, "k" => i, "grp" => i % 100, "v" => (i * 7 % 1000) as f64}
    }))
    .expect("insert");
    coll
}

fn bench_lookup(c: &mut Criterion) {
    let coll = seeded_collection(50_000);
    c.bench_function("find/collscan_eq", |b| {
        b.iter(|| black_box(coll.find(&Filter::eq("grp", 42i64))))
    });
    coll.create_index(IndexDef::single("grp")).expect("index");
    c.bench_function("find/ixscan_eq", |b| {
        b.iter(|| black_box(coll.find(&Filter::eq("grp", 42i64))))
    });
    c.bench_function("find/ixscan_point_id", |b| {
        b.iter(|| black_box(coll.find(&Filter::eq("_id", 25_000i64))))
    });
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("insert/one_with_id_index", |b| {
        let coll = Collection::new("ins");
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            coll.insert_one(doc! {"_id" => i, "v" => i * 3}).unwrap()
        })
    });
    c.bench_function("insert/batch_1000", |b| {
        b.iter_batched(
            || (0..1000i64).map(|i| doc! {"k" => i}).collect::<Vec<_>>(),
            |docs| Collection::new("batch").insert_many(docs).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let coll = seeded_collection(50_000);
    let p = Pipeline::new()
        .match_stage(Filter::lt("k", 25_000i64))
        .group(
            GroupId::Expr(Expr::field("grp")),
            [("total", Accumulator::sum_field("v")), ("n", Accumulator::count())],
        )
        .sort([("total", -1)]);
    c.bench_function("aggregate/match_group_sort_50k", |b| {
        b.iter(|| black_box(coll.aggregate(&p).unwrap()))
    });
}

fn bench_agg_streaming(c: &mut Criterion) {
    // Q7 shape: a selective leading $match (one of 100 groups), $group
    // with averages, $sort, $limit. With the `grp` index in place the
    // streaming executor index-scans ~500 documents and clones only the
    // survivors; the legacy executor clones all 50k up front.
    let coll = seeded_collection(50_000);
    coll.create_index(IndexDef::single("grp")).expect("index");
    let p = Pipeline::new()
        .match_stage(Filter::eq("grp", 42i64))
        .group(
            GroupId::Expr(Expr::field("k")),
            [("avg_v", Accumulator::avg_field("v")), ("n", Accumulator::count())],
        )
        .sort([("_id", 1)])
        .limit(100);
    let mut g = c.benchmark_group("agg_streaming");
    g.bench_function("legacy", |b| {
        b.iter(|| {
            black_box(
                coll.aggregate_with_mode(&p, None, ExecMode::Legacy)
                    .unwrap(),
            )
        })
    });
    g.bench_function("streaming", |b| {
        b.iter(|| {
            black_box(
                coll.aggregate_with_mode(&p, None, ExecMode::Streaming)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_wal_overhead(c: &mut Criterion) {
    // What logging costs the write path. The baseline collection has no
    // WAL attached; the durable ones log every insert, with fsync policy
    // as the variable. `Never` isolates pure frame-encoding + file-write
    // overhead — the healthy-path cost a cluster without durability
    // never pays.
    use doclite_docstore::{DurableDb, SyncPolicy, WalOptions};
    let scratch = std::env::temp_dir().join(format!("doclite_walbench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut g = c.benchmark_group("wal_overhead");
    g.bench_function("insert_no_wal", |b| {
        let coll = Collection::new("w0");
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            coll.insert_one(doc! {"_id" => i, "v" => i * 3}).unwrap()
        })
    });
    for (label, sync) in [
        ("insert_wal_never", SyncPolicy::Never),
        ("insert_wal_every64", SyncPolicy::EveryN(64)),
    ] {
        let dir = scratch.join(label);
        let (handle, _) = DurableDb::open("walbench", &dir, WalOptions { sync, faults: None })
            .expect("open durable db");
        let coll = handle.db().collection("w1");
        let mut i = 0i64;
        g.bench_function(label, |b| {
            b.iter(|| {
                i += 1;
                coll.insert_one(doc! {"_id" => i, "v" => i * 3}).unwrap()
            })
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&scratch);
}

criterion_group!(
    benches,
    bench_codec,
    bench_matcher,
    bench_lookup,
    bench_insert,
    bench_pipeline,
    bench_agg_streaming,
    bench_wal_overhead
);
criterion_main!(benches);
