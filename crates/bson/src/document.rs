//! Insertion-ordered key/value documents.

use crate::{ObjectId, Value};

/// An insertion-ordered map of field name → [`Value`], the basic unit of
/// data (thesis Section 2.1). Field order is preserved — like BSON — so a
/// migrated TPC-DS row keeps its column order and document comparison is
/// deterministic.
///
/// Lookup is a linear scan: workload documents carry a few dozen fields at
/// most, where a scan beats hashing (no allocation, cache-friendly).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Document {
    fields: Vec<(String, Value)>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self { fields: Vec::new() }
    }

    /// Creates an empty document with capacity for `n` fields.
    pub fn with_capacity(n: usize) -> Self {
        Self { fields: Vec::with_capacity(n) }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Gets a field by exact name (no dotted-path resolution).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to a field by exact name.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if a field with this exact name exists.
    pub fn contains_key(&self, key: &str) -> bool {
        self.fields.iter().any(|(k, _)| k == key)
    }

    /// Sets a field, replacing any existing value and keeping its
    /// position; appends otherwise.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        match self.fields.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.fields.push((key, value)),
        }
    }

    /// Builder-style `set`.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    /// Removes a field, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|(k, _)| k == key)?;
        Some(self.fields.remove(idx).1)
    }

    /// Iterates fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.fields.iter().map(|(k, v)| (k, v))
    }

    /// Iterates field names in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.fields.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.fields.iter().map(|(_, v)| v)
    }

    /// Resolves a dotted path (`"a.b.c"`) through embedded documents.
    /// Traversal through an array applies the path to each element and
    /// yields the matches as an array (multikey semantics); see
    /// [`crate::path::resolve_path`] for the full rules.
    pub fn get_path(&self, path: &str) -> Option<Value> {
        crate::path::resolve_path(self, path)
    }

    /// Borrowed-form [`Document::get_path`]: no clone unless the path
    /// fans out through an array (see [`crate::path::resolve_path_ref`]).
    pub fn get_path_ref<'a>(&'a self, path: &str) -> Option<crate::path::Resolved<'a>> {
        crate::path::resolve_path_ref(self, path)
    }

    /// Sets a value at a dotted path, creating intermediate embedded
    /// documents as needed. Fails (returns `false`) if an intermediate
    /// component exists but is not a document.
    pub fn set_path(&mut self, path: &str, value: Value) -> bool {
        let mut parts = path.split('.').peekable();
        let mut doc = self;
        while let Some(part) = parts.next() {
            if parts.peek().is_none() {
                doc.set(part, value);
                return true;
            }
            if !doc.contains_key(part) {
                doc.set(part, Value::Document(Document::new()));
            }
            match doc.get_mut(part) {
                Some(Value::Document(inner)) => doc = inner,
                _ => return false,
            }
        }
        false
    }

    /// The document's `_id` field, if present.
    pub fn id(&self) -> Option<&Value> {
        self.get("_id")
    }

    /// Ensures an `_id` field exists, generating an [`ObjectId`] if
    /// missing (mirrors driver behaviour on insert). Returns the id.
    pub fn ensure_id(&mut self) -> Value {
        if let Some(v) = self.get("_id") {
            return v.clone();
        }
        let id = Value::ObjectId(ObjectId::new());
        // _id conventionally leads the document.
        self.fields.insert(0, ("_id".to_owned(), id.clone()));
        id
    }

    /// Rough in-memory size in bytes; the codec's
    /// [`crate::codec::encoded_size`] is authoritative for limits.
    pub fn approx_mem_size(&self) -> usize {
        self.fields
            .iter()
            .map(|(k, v)| k.len() + approx_value_size(v) + 16)
            .sum()
    }
}

fn approx_value_size(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 1,
        Value::Int32(_) => 4,
        Value::Int64(_) | Value::Double(_) | Value::DateTime(_) => 8,
        Value::ObjectId(_) => 12,
        Value::String(s) => s.len(),
        Value::Array(a) => a.iter().map(approx_value_size).sum::<usize>() + 8,
        Value::Document(d) => d.approx_mem_size(),
    }
}

impl FromIterator<(String, Value)> for Document {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut d = Document::new();
        for (k, v) in iter {
            d.set(k, v);
        }
        d
    }
}

impl IntoIterator for Document {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.fields.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn set_preserves_insertion_order_and_replaces_in_place() {
        let mut d = doc! {"a" => 1i64, "b" => 2i64, "c" => 3i64};
        d.set("b", 99i64);
        let keys: Vec<_> = d.keys().cloned().collect();
        assert_eq!(keys, ["a", "b", "c"]);
        assert_eq!(d.get("b"), Some(&Value::Int64(99)));
    }

    #[test]
    fn remove_returns_value() {
        let mut d = doc! {"a" => 1i64};
        assert_eq!(d.remove("a"), Some(Value::Int64(1)));
        assert_eq!(d.remove("a"), None);
        assert!(d.is_empty());
    }

    #[test]
    fn ensure_id_generates_once_and_leads() {
        let mut d = doc! {"x" => 5i64};
        let id1 = d.ensure_id();
        let id2 = d.ensure_id();
        assert_eq!(id1, id2);
        assert_eq!(d.keys().next().map(String::as_str), Some("_id"));
    }

    #[test]
    fn ensure_id_respects_existing() {
        let mut d = doc! {"_id" => 42i64};
        assert_eq!(d.ensure_id(), Value::Int64(42));
    }

    #[test]
    fn set_path_creates_intermediates() {
        let mut d = Document::new();
        assert!(d.set_path("a.b.c", Value::Int32(7)));
        assert_eq!(d.get_path("a.b.c"), Some(Value::Int32(7)));
    }

    #[test]
    fn set_path_fails_through_scalar() {
        let mut d = doc! {"a" => 1i64};
        assert!(!d.set_path("a.b", Value::Int32(7)));
    }

    #[test]
    fn get_path_through_embedded_document() {
        let d = doc! {"store" => doc!{"address" => doc!{"city" => "Midway"}}};
        assert_eq!(
            d.get_path("store.address.city"),
            Some(Value::from("Midway"))
        );
        assert_eq!(d.get_path("store.missing"), None);
    }
}
