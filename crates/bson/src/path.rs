//! Dotted field-path parsing and resolution.
//!
//! The thesis's denormalized queries navigate embedded documents with
//! dotted paths (`"ss_cdemo_sk.cd_gender"`, Appendix B); the match
//! language and aggregation expressions both resolve paths through this
//! module so their semantics stay aligned.

use crate::{Document, Value};

/// A parsed dotted field path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FieldPath {
    segments: Vec<String>,
}

impl FieldPath {
    /// Parses a dotted path. Empty segments are rejected.
    pub fn parse(path: &str) -> Option<Self> {
        if path.is_empty() {
            return None;
        }
        let segments: Vec<String> = path.split('.').map(str::to_owned).collect();
        if segments.iter().any(String::is_empty) {
            return None;
        }
        Some(Self { segments })
    }

    /// The path segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// The leading segment (the top-level field name).
    pub fn head(&self) -> &str {
        &self.segments[0]
    }

    /// Renders back to dotted form.
    pub fn dotted(&self) -> String {
        self.segments.join(".")
    }

    /// Resolves the path against a document.
    pub fn resolve(&self, doc: &Document) -> Option<Value> {
        resolve_segments(doc, &self.segments)
    }
}

impl std::fmt::Display for FieldPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.dotted())
    }
}

/// Resolves a dotted path against a document.
///
/// Rules (matching MongoDB's navigation semantics used by the thesis):
///
/// * a segment descends into an embedded document by field name;
/// * a numeric segment indexes into an array (`"items.0.price"`);
/// * a non-numeric segment applied to an array maps over the elements and
///   collects the matches into an array (multikey fan-out); if no element
///   matches, resolution fails;
/// * resolution of a missing field yields `None` (distinct from an
///   explicit `Null` value).
pub fn resolve_path(doc: &Document, path: &str) -> Option<Value> {
    let segments: Vec<&str> = path.split('.').collect();
    if segments.iter().any(|s| s.is_empty()) {
        return None;
    }
    resolve_segments_str(doc, &segments)
}

fn resolve_segments(doc: &Document, segments: &[String]) -> Option<Value> {
    let refs: Vec<&str> = segments.iter().map(String::as_str).collect();
    resolve_segments_str(doc, &refs)
}

fn resolve_segments_str(doc: &Document, segments: &[&str]) -> Option<Value> {
    let (first, rest) = segments.split_first()?;
    let v = doc.get(first)?;
    if rest.is_empty() {
        return Some(v.clone());
    }
    descend(v, rest)
}

fn descend(v: &Value, rest: &[&str]) -> Option<Value> {
    match v {
        Value::Document(d) => resolve_segments_str(d, rest),
        Value::Array(items) => {
            let (seg, tail) = rest.split_first()?;
            if let Ok(idx) = seg.parse::<usize>() {
                let elem = items.get(idx)?;
                if tail.is_empty() {
                    return Some(elem.clone());
                }
                return descend(elem, tail);
            }
            // Multikey fan-out: apply the remaining path to each element.
            let collected: Vec<Value> = items
                .iter()
                .filter_map(|e| match e {
                    Value::Document(d) => resolve_segments_str(d, rest),
                    _ => None,
                })
                .collect();
            if collected.is_empty() {
                None
            } else {
                Some(Value::Array(collected))
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{array, doc};

    #[test]
    fn parse_rejects_empty_and_dotted_holes() {
        assert!(FieldPath::parse("").is_none());
        assert!(FieldPath::parse("a..b").is_none());
        assert!(FieldPath::parse(".a").is_none());
        assert_eq!(FieldPath::parse("a.b").unwrap().segments().len(), 2);
    }

    #[test]
    fn resolves_scalar_and_nested() {
        let d = doc! {"a" => doc!{"b" => 3i64}};
        assert_eq!(resolve_path(&d, "a.b"), Some(Value::Int64(3)));
        assert_eq!(resolve_path(&d, "a"), Some(d.get("a").unwrap().clone()));
        assert_eq!(resolve_path(&d, "a.c"), None);
    }

    #[test]
    fn numeric_segment_indexes_arrays() {
        let d = doc! {"xs" => array![10i64, 20i64, 30i64]};
        assert_eq!(resolve_path(&d, "xs.1"), Some(Value::Int64(20)));
        assert_eq!(resolve_path(&d, "xs.9"), None);
    }

    #[test]
    fn multikey_fanout_collects_matches() {
        let d = doc! {
            "books" => Value::Array(vec![
                Value::Document(doc!{"pages" => 216i64}),
                Value::Document(doc!{"pages" => 418i64}),
                Value::Int64(7), // non-document elements are skipped
            ])
        };
        assert_eq!(
            resolve_path(&d, "books.pages"),
            Some(array![216i64, 418i64])
        );
    }

    #[test]
    fn fanout_with_no_matches_fails() {
        let d = doc! {"books" => array![1i64, 2i64]};
        assert_eq!(resolve_path(&d, "books.pages"), None);
    }

    #[test]
    fn deep_mixed_navigation() {
        let d = doc! {
            "a" => Value::Array(vec![Value::Document(
                doc!{"b" => Value::Array(vec![Value::Document(doc!{"c" => 1i64})])},
            )])
        };
        assert_eq!(resolve_path(&d, "a.0.b.0.c"), Some(Value::Int64(1)));
    }

    #[test]
    fn display_roundtrip() {
        let p = FieldPath::parse("x.y.z").unwrap();
        assert_eq!(p.to_string(), "x.y.z");
        assert_eq!(p.head(), "x");
    }
}
