//! Dotted field-path parsing and resolution.
//!
//! The thesis's denormalized queries navigate embedded documents with
//! dotted paths (`"ss_cdemo_sk.cd_gender"`, Appendix B); the match
//! language and aggregation expressions both resolve paths through this
//! module so their semantics stay aligned.
//!
//! Resolution is built around [`Resolved`], a borrow-or-own result: a
//! path that lands on a value stored in the document borrows it, and
//! only multikey fan-out (a non-numeric segment applied to an array)
//! materializes a fresh array. [`CompiledPath`] pre-splits the dotted
//! string and pre-parses numeric segments so repeated evaluation — the
//! compile-once/evaluate-many execution kernel — does no per-document
//! string work at all. All three entry points ([`resolve_path`],
//! [`FieldPath::resolve`], [`CompiledPath::resolve`]) share one generic
//! resolver core, so their semantics cannot drift.

use crate::{Document, Value};

/// A value resolved from a document: borrowed straight out of the
/// document wherever possible, owned only when multikey fan-out had to
/// build a fresh array of matches.
#[derive(Debug)]
pub enum Resolved<'a> {
    /// The path landed on a value stored in the document.
    Borrowed(&'a Value),
    /// Multikey fan-out collected matches into a new array.
    Owned(Value),
}

impl<'a> Resolved<'a> {
    /// Borrows the resolved value regardless of ownership.
    pub fn as_value(&self) -> &Value {
        match self {
            Resolved::Borrowed(v) => v,
            Resolved::Owned(v) => v,
        }
    }

    /// Unwraps into an owned value, cloning only if borrowed.
    pub fn into_value(self) -> Value {
        match self {
            Resolved::Borrowed(v) => v.clone(),
            Resolved::Owned(v) => v,
        }
    }

    /// A borrowed `Null` with no tie to any document — the conventional
    /// stand-in for a missing field in sort keys and expressions.
    pub fn null() -> Resolved<'static> {
        static NULL: Value = Value::Null;
        Resolved::Borrowed(&NULL)
    }
}

/// One path segment in any representation the resolver accepts.
trait PathSegment {
    fn name(&self) -> &str;
    fn array_index(&self) -> Option<usize>;
}

impl PathSegment for &str {
    fn name(&self) -> &str {
        self
    }
    fn array_index(&self) -> Option<usize> {
        self.parse().ok()
    }
}

impl PathSegment for String {
    fn name(&self) -> &str {
        self
    }
    fn array_index(&self) -> Option<usize> {
        self.parse().ok()
    }
}

/// A pre-split segment with its numeric array index pre-parsed, so the
/// hot path neither splits strings nor parses integers per document.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Segment {
    name: Box<str>,
    index: Option<usize>,
}

impl PathSegment for Segment {
    fn name(&self) -> &str {
        &self.name
    }
    fn array_index(&self) -> Option<usize> {
        self.index
    }
}

/// A dotted path compiled once for repeated borrowed resolution.
///
/// An invalid path (empty, or containing an empty segment like `"a..b"`)
/// compiles to a path that never resolves — the same behaviour
/// [`resolve_path`] gives such strings at evaluation time — so filter
/// and expression compilation stays infallible.
#[derive(Clone, Debug)]
pub struct CompiledPath {
    /// `None` marks an invalid path; a valid path has ≥ 1 segment.
    segments: Option<Box<[Segment]>>,
}

impl CompiledPath {
    /// Compiles a dotted path. Never fails; invalid paths simply never
    /// resolve (and never write).
    pub fn new(path: &str) -> Self {
        if path.is_empty() {
            return Self { segments: None };
        }
        let segments: Vec<Segment> = path
            .split('.')
            .map(|s| Segment { name: s.into(), index: s.parse().ok() })
            .collect();
        if segments.iter().any(|s| s.name.is_empty()) {
            return Self { segments: None };
        }
        Self { segments: Some(segments.into_boxed_slice()) }
    }

    /// True if the path parsed into usable segments.
    pub fn is_valid(&self) -> bool {
        self.segments.is_some()
    }

    /// Resolves against a document without cloning scalars; see
    /// [`resolve_path`] for the navigation rules.
    pub fn resolve<'a>(&self, doc: &'a Document) -> Option<Resolved<'a>> {
        resolve_segments_ref(doc, self.segments.as_deref()?)
    }

    /// Sets a value at this path, creating intermediate embedded
    /// documents as needed — the compiled counterpart of
    /// [`Document::set_path`], with identical semantics: every segment
    /// is treated as a field name, and the write fails (returns `false`)
    /// if an intermediate component exists but is not a document.
    pub fn set(&self, doc: &mut Document, value: Value) -> bool {
        let Some(segments) = self.segments.as_deref() else {
            return false;
        };
        let (last, init) = segments.split_last().expect("compiled paths are non-empty");
        let mut cur = doc;
        for seg in init {
            if !cur.contains_key(&seg.name) {
                cur.set(seg.name.as_ref(), Value::Document(Document::new()));
            }
            match cur.get_mut(&seg.name) {
                Some(Value::Document(inner)) => cur = inner,
                _ => return false,
            }
        }
        cur.set(last.name.as_ref(), value);
        true
    }
}

/// A parsed dotted field path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FieldPath {
    segments: Vec<String>,
}

impl FieldPath {
    /// Parses a dotted path. Empty segments are rejected.
    pub fn parse(path: &str) -> Option<Self> {
        if path.is_empty() {
            return None;
        }
        let segments: Vec<String> = path.split('.').map(str::to_owned).collect();
        if segments.iter().any(String::is_empty) {
            return None;
        }
        Some(Self { segments })
    }

    /// The path segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// The leading segment (the top-level field name).
    pub fn head(&self) -> &str {
        &self.segments[0]
    }

    /// Renders back to dotted form.
    pub fn dotted(&self) -> String {
        self.segments.join(".")
    }

    /// Resolves the path against a document.
    pub fn resolve(&self, doc: &Document) -> Option<Value> {
        resolve_segments_ref(doc, &self.segments).map(Resolved::into_value)
    }
}

impl std::fmt::Display for FieldPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.dotted())
    }
}

/// Resolves a dotted path against a document.
///
/// Rules (matching MongoDB's navigation semantics used by the thesis):
///
/// * a segment descends into an embedded document by field name;
/// * a numeric segment indexes into an array (`"items.0.price"`);
/// * a non-numeric segment applied to an array maps over the elements and
///   collects the matches into an array (multikey fan-out); if no element
///   matches, resolution fails;
/// * resolution of a missing field yields `None` (distinct from an
///   explicit `Null` value).
pub fn resolve_path(doc: &Document, path: &str) -> Option<Value> {
    resolve_path_ref(doc, path).map(Resolved::into_value)
}

/// Borrowed-form [`resolve_path`]: scalars and embedded values come back
/// as references into the document; only multikey fan-out allocates.
pub fn resolve_path_ref<'a>(doc: &'a Document, path: &str) -> Option<Resolved<'a>> {
    let segments: Vec<&str> = path.split('.').collect();
    if segments.iter().any(|s| s.is_empty()) {
        return None;
    }
    resolve_segments_ref(doc, &segments)
}

fn resolve_segments_ref<'a, S: PathSegment>(
    doc: &'a Document,
    segments: &[S],
) -> Option<Resolved<'a>> {
    let (first, rest) = segments.split_first()?;
    let v = doc.get(first.name())?;
    if rest.is_empty() {
        return Some(Resolved::Borrowed(v));
    }
    descend_ref(v, rest)
}

fn descend_ref<'a, S: PathSegment>(v: &'a Value, rest: &[S]) -> Option<Resolved<'a>> {
    match v {
        Value::Document(d) => resolve_segments_ref(d, rest),
        Value::Array(items) => {
            let (seg, tail) = rest.split_first()?;
            if let Some(idx) = seg.array_index() {
                let elem = items.get(idx)?;
                if tail.is_empty() {
                    return Some(Resolved::Borrowed(elem));
                }
                return descend_ref(elem, tail);
            }
            // Multikey fan-out: apply the remaining path to each element.
            let collected: Vec<Value> = items
                .iter()
                .filter_map(|e| match e {
                    Value::Document(d) => {
                        resolve_segments_ref(d, rest).map(Resolved::into_value)
                    }
                    _ => None,
                })
                .collect();
            if collected.is_empty() {
                None
            } else {
                Some(Resolved::Owned(Value::Array(collected)))
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{array, doc};

    #[test]
    fn parse_rejects_empty_and_dotted_holes() {
        assert!(FieldPath::parse("").is_none());
        assert!(FieldPath::parse("a..b").is_none());
        assert!(FieldPath::parse(".a").is_none());
        assert_eq!(FieldPath::parse("a.b").unwrap().segments().len(), 2);
    }

    #[test]
    fn resolves_scalar_and_nested() {
        let d = doc! {"a" => doc!{"b" => 3i64}};
        assert_eq!(resolve_path(&d, "a.b"), Some(Value::Int64(3)));
        assert_eq!(resolve_path(&d, "a"), Some(d.get("a").unwrap().clone()));
        assert_eq!(resolve_path(&d, "a.c"), None);
    }

    #[test]
    fn numeric_segment_indexes_arrays() {
        let d = doc! {"xs" => array![10i64, 20i64, 30i64]};
        assert_eq!(resolve_path(&d, "xs.1"), Some(Value::Int64(20)));
        assert_eq!(resolve_path(&d, "xs.9"), None);
    }

    #[test]
    fn multikey_fanout_collects_matches() {
        let d = doc! {
            "books" => Value::Array(vec![
                Value::Document(doc!{"pages" => 216i64}),
                Value::Document(doc!{"pages" => 418i64}),
                Value::Int64(7), // non-document elements are skipped
            ])
        };
        assert_eq!(
            resolve_path(&d, "books.pages"),
            Some(array![216i64, 418i64])
        );
    }

    #[test]
    fn fanout_with_no_matches_fails() {
        let d = doc! {"books" => array![1i64, 2i64]};
        assert_eq!(resolve_path(&d, "books.pages"), None);
    }

    #[test]
    fn deep_mixed_navigation() {
        let d = doc! {
            "a" => Value::Array(vec![Value::Document(
                doc!{"b" => Value::Array(vec![Value::Document(doc!{"c" => 1i64})])},
            )])
        };
        assert_eq!(resolve_path(&d, "a.0.b.0.c"), Some(Value::Int64(1)));
    }

    #[test]
    fn display_roundtrip() {
        let p = FieldPath::parse("x.y.z").unwrap();
        assert_eq!(p.to_string(), "x.y.z");
        assert_eq!(p.head(), "x");
    }

    #[test]
    fn resolve_ref_borrows_scalars_and_owns_fanout() {
        let d = doc! {
            "a" => doc!{"b" => 3i64},
            "books" => Value::Array(vec![
                Value::Document(doc!{"pages" => 216i64}),
                Value::Document(doc!{"pages" => 418i64}),
            ])
        };
        assert!(matches!(
            resolve_path_ref(&d, "a.b"),
            Some(Resolved::Borrowed(Value::Int64(3)))
        ));
        assert!(matches!(
            resolve_path_ref(&d, "books.pages"),
            Some(Resolved::Owned(Value::Array(_)))
        ));
        assert!(resolve_path_ref(&d, "a..b").is_none());
        assert!(resolve_path_ref(&d, "").is_none());
    }

    #[test]
    fn compiled_path_matches_string_resolution() {
        let d = doc! {
            "a" => doc!{"b" => 3i64},
            "xs" => array![10i64, 20i64],
            "books" => Value::Array(vec![
                Value::Document(doc!{"pages" => 216i64}),
                Value::Int64(9),
            ])
        };
        for path in ["a", "a.b", "a.c", "xs.1", "xs.9", "books.pages", "missing", "a..b", ""] {
            let compiled = CompiledPath::new(path);
            assert_eq!(
                compiled.resolve(&d).map(Resolved::into_value),
                resolve_path(&d, path),
                "path {path:?}"
            );
        }
    }

    #[test]
    fn compiled_set_matches_set_path() {
        for (path, value) in [
            ("a.b.c", Value::Int32(7)),
            ("top", Value::Int64(1)),
            ("xs.0", Value::Int64(9)), // fails through the array, like set_path
        ] {
            let mut via_string = doc! {"xs" => array![1i64], "top" => 0i64};
            let mut via_compiled = via_string.clone();
            let a = via_string.set_path(path, value.clone());
            let b = CompiledPath::new(path).set(&mut via_compiled, value);
            assert_eq!(a, b, "path {path:?}");
            assert_eq!(via_string, via_compiled, "path {path:?}");
        }
        assert!(!CompiledPath::new("").set(&mut Document::new(), Value::Null));
    }

    #[test]
    fn resolved_null_is_null() {
        assert!(Resolved::null().as_value().is_null());
        assert_eq!(Resolved::null().into_value(), Value::Null);
    }
}
