//! 12-byte ObjectId generation.
//!
//! MongoDB's default `_id` is an ObjectId built from a timestamp, a
//! machine identifier, a process id, and a process-local counter
//! (thesis Section 2.1). We reproduce the same layout deterministically:
//! the "machine id" and "pid" components come from a per-process random
//! seed so ids are unique across engines in the simulated cluster, and the
//! trailing counter guarantees uniqueness within a process.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static COUNTER: AtomicU32 = AtomicU32::new(0);
static PROCESS_UNIQUE: AtomicU64 = AtomicU64::new(0);

fn process_unique() -> u64 {
    // Lazily derive 5 bytes of process-unique entropy from the process id
    // and startup time; good enough for a single-process simulation and
    // fully deterministic given the same pid + boot instant.
    let mut v = PROCESS_UNIQUE.load(Ordering::Relaxed);
    if v == 0 {
        let pid = std::process::id() as u64;
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        v = (pid << 32) ^ (nanos.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        PROCESS_UNIQUE.store(v, Ordering::Relaxed);
    }
    v
}

/// A 12-byte unique identifier: 4-byte big-endian seconds timestamp,
/// 5-byte process-unique value, 3-byte big-endian counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId([u8; 12]);

impl ObjectId {
    /// Generates a fresh ObjectId.
    pub fn new() -> Self {
        let secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs() as u32)
            .unwrap_or(0);
        let unique = process_unique();
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::from_parts(secs, unique, count)
    }

    /// Builds an ObjectId from its components; used by tests and by the
    /// deterministic data generator.
    pub fn from_parts(timestamp_secs: u32, process_unique: u64, counter: u32) -> Self {
        let mut b = [0u8; 12];
        b[0..4].copy_from_slice(&timestamp_secs.to_be_bytes());
        b[4..9].copy_from_slice(&process_unique.to_be_bytes()[3..8]);
        b[9..12].copy_from_slice(&counter.to_be_bytes()[1..4]);
        ObjectId(b)
    }

    /// Constructs an ObjectId from raw bytes.
    pub fn from_bytes(bytes: [u8; 12]) -> Self {
        ObjectId(bytes)
    }

    /// Returns the raw byte representation.
    pub fn bytes(&self) -> &[u8; 12] {
        &self.0
    }

    /// Returns the embedded creation timestamp (seconds since epoch).
    pub fn timestamp_secs(&self) -> u32 {
        u32::from_be_bytes([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// Renders as the conventional 24-character lowercase hex string.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(24);
        for b in &self.0 {
            use std::fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Parses a 24-character hex string back into an ObjectId.
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 24 || !s.is_ascii() {
            return None;
        }
        let mut b = [0u8; 12];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            b[i] = ((hi << 4) | lo) as u8;
        }
        Some(ObjectId(b))
    }
}

impl Default for ObjectId {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId(\"{}\")", self.to_hex())
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn new_ids_are_unique() {
        let ids: HashSet<ObjectId> = (0..10_000).map(|_| ObjectId::new()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn hex_roundtrip() {
        let id = ObjectId::new();
        let hex = id.to_hex();
        assert_eq!(hex.len(), 24);
        assert_eq!(ObjectId::parse_hex(&hex), Some(id));
    }

    #[test]
    fn parse_hex_rejects_bad_input() {
        assert_eq!(ObjectId::parse_hex("xyz"), None);
        assert_eq!(ObjectId::parse_hex(&"g".repeat(24)), None);
        assert_eq!(ObjectId::parse_hex(&"a".repeat(23)), None);
    }

    #[test]
    fn from_parts_layout() {
        let id = ObjectId::from_parts(0x01020304, 0xAABBCCDDEE, 0x00112233);
        assert_eq!(id.timestamp_secs(), 0x01020304);
        assert_eq!(&id.bytes()[0..4], &[1, 2, 3, 4]);
        assert_eq!(&id.bytes()[4..9], &[0xAA, 0xBB, 0xCC, 0xDD, 0xEE]);
        assert_eq!(&id.bytes()[9..12], &[0x11, 0x22, 0x33]);
    }

    #[test]
    fn ids_generated_later_sort_later_within_same_second() {
        let a = ObjectId::from_parts(100, 7, 1);
        let b = ObjectId::from_parts(100, 7, 2);
        assert!(a < b);
    }

    #[test]
    fn timestamp_dominates_ordering() {
        let a = ObjectId::from_parts(100, u64::MAX, u32::MAX);
        let b = ObjectId::from_parts(101, 0, 0);
        assert!(a < b);
    }
}
