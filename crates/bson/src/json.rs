//! Relaxed-JSON rendering of documents, in the style of the mongo shell
//! (`ObjectId("…")`, `ISODate(…)`), used by examples and error output.

use crate::{Document, Value};
use std::fmt::Write;

/// Renders a document as single-line relaxed JSON.
pub fn to_json(doc: &Document) -> String {
    let mut out = String::new();
    write_doc(&mut out, doc);
    out
}

/// Renders a document as indented multi-line relaxed JSON.
pub fn to_json_pretty(doc: &Document) -> String {
    let mut out = String::new();
    write_doc_pretty(&mut out, doc, 0);
    out
}

fn write_doc(out: &mut String, doc: &Document) {
    out.push('{');
    for (i, (k, v)) in doc.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_string(out, k);
        out.push_str(": ");
        write_value(out, v);
    }
    out.push('}');
}

fn write_doc_pretty(out: &mut String, doc: &Document, indent: usize) {
    if doc.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let pad = "  ".repeat(indent + 1);
    for (i, (k, v)) in doc.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&pad);
        write_string(out, k);
        out.push_str(": ");
        write_value_pretty(out, v, indent + 1);
    }
    out.push('\n');
    out.push_str(&"  ".repeat(indent));
    out.push('}');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int32(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Int64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Double(d) => write_double(out, *d),
        Value::String(s) => write_string(out, s),
        Value::DateTime(ms) => {
            let _ = write!(out, "ISODate({ms})");
        }
        Value::ObjectId(oid) => {
            let _ = write!(out, "ObjectId(\"{oid}\")");
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Document(d) => write_doc(out, d),
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Document(d) => write_doc_pretty(out, d, indent),
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            let pad = "  ".repeat(indent + 1);
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        other => write_value(out, other),
    }
}

fn write_double(out: &mut String, d: f64) {
    if d.is_nan() {
        out.push_str("NaN");
    } else if d.is_infinite() {
        out.push_str(if d > 0.0 { "Infinity" } else { "-Infinity" });
    } else if d.fract() == 0.0 && d.abs() < 1e15 {
        let _ = write!(out, "{d:.1}");
    } else {
        let _ = write!(out, "{d}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Document {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&to_json(self))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{array, doc, ObjectId};

    #[test]
    fn renders_scalars() {
        let d = doc! {"i" => 1i32, "f" => 2.5f64, "s" => "x", "b" => false, "n" => Value::Null};
        assert_eq!(
            to_json(&d),
            r#"{"i": 1, "f": 2.5, "s": "x", "b": false, "n": null}"#
        );
    }

    #[test]
    fn renders_integral_double_with_decimal_point() {
        let d = doc! {"f" => 2.0f64};
        assert_eq!(to_json(&d), r#"{"f": 2.0}"#);
    }

    #[test]
    fn renders_shell_types() {
        let oid = ObjectId::from_parts(0, 0, 0);
        let d = doc! {"id" => oid, "t" => Value::DateTime(5)};
        assert_eq!(
            to_json(&d),
            format!(r#"{{"id": ObjectId("{oid}"), "t": ISODate(5)}}"#)
        );
    }

    #[test]
    fn escapes_strings() {
        let d = doc! {"s" => "a\"b\\c\nd"};
        assert_eq!(to_json(&d), "{\"s\": \"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn pretty_nests() {
        let d = doc! {"a" => doc!{"b" => array![1i64]}};
        let pretty = to_json_pretty(&d);
        assert!(pretty.contains("\n  \"a\": {\n"));
        assert!(pretty.contains("\"b\": [\n"));
    }
}
