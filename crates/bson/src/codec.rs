//! Binary document codec (BSON wire layout).
//!
//! The engine needs faithful *size accounting* more than it needs wire
//! compatibility: the 16 MB document cap (Section 2.1.1), the 64 MB chunk
//! threshold (Section 2.1.3.3), and the paper's query-selectivity metric
//! (Table 4.4, megabytes of result data) are all defined over encoded
//! document size. The layout below follows the BSON spec for the types we
//! support, so sizes match what MongoDB 3.0 would report.
//!
//! Layout: `document ::= int32(total_len) element* 0x00`;
//! `element ::= type_byte cstring(name) payload`. Arrays are encoded as
//! documents keyed `"0"`, `"1"`, … exactly as BSON does.

use crate::{Document, ObjectId, Value};
use std::fmt;

const T_DOUBLE: u8 = 0x01;
const T_STRING: u8 = 0x02;
const T_DOCUMENT: u8 = 0x03;
const T_ARRAY: u8 = 0x04;
const T_OBJECTID: u8 = 0x07;
const T_BOOL: u8 = 0x08;
const T_DATETIME: u8 = 0x09;
const T_NULL: u8 = 0x0A;
const T_INT32: u8 = 0x10;
const T_INT64: u8 = 0x12;

/// Errors surfaced while decoding a binary document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the declared length.
    Truncated,
    /// A declared length field was inconsistent with the data.
    BadLength,
    /// An unknown element type byte was encountered.
    UnknownType(u8),
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "document truncated"),
            CodecError::BadLength => write!(f, "inconsistent length field"),
            CodecError::UnknownType(t) => write!(f, "unknown element type 0x{t:02x}"),
            CodecError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes a document into its binary representation.
pub fn encode_document(doc: &Document) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_size(doc));
    write_document(&mut buf, doc);
    buf
}

/// The encoded size of a document in bytes, computed without allocating.
///
/// This is the measure behind the 16 MB document cap, chunk sizes, and the
/// selectivity numbers of Table 4.4.
pub fn encoded_size(doc: &Document) -> usize {
    // 4-byte length prefix + elements + trailing 0x00.
    4 + doc
        .iter()
        .map(|(k, v)| 1 + k.len() + 1 + value_payload_size(v))
        .sum::<usize>()
        + 1
}

/// The encoded payload size of a single value (excluding the element
/// type byte and key), computed without allocating. Lets callers that
/// pack values into size-bounded containers (e.g. the WAL's chunked
/// delete frames) budget precisely.
pub fn encoded_value_size(v: &Value) -> usize {
    value_payload_size(v)
}

fn value_payload_size(v: &Value) -> usize {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int32(_) => 4,
        Value::Double(_) | Value::Int64(_) | Value::DateTime(_) => 8,
        Value::ObjectId(_) => 12,
        Value::String(s) => 4 + s.len() + 1,
        Value::Document(d) => encoded_size(d),
        Value::Array(items) => array_encoded_size(items),
    }
}

fn array_encoded_size(items: &[Value]) -> usize {
    let mut n = 4 + 1; // length prefix + terminator
    let mut idx_buf = itoa_buffer();
    for (i, v) in items.iter().enumerate() {
        let key_len = write_itoa(&mut idx_buf, i);
        n += 1 + key_len + 1 + value_payload_size(v);
    }
    n
}

fn itoa_buffer() -> [u8; 20] {
    [0u8; 20]
}

/// Formats `i` into `buf`, returning the digit count (no allocation).
fn write_itoa(buf: &mut [u8; 20], mut i: usize) -> usize {
    if i == 0 {
        buf[0] = b'0';
        return 1;
    }
    let mut digits = 0;
    let mut tmp = [0u8; 20];
    while i > 0 {
        tmp[digits] = b'0' + (i % 10) as u8;
        i /= 10;
        digits += 1;
    }
    for d in 0..digits {
        buf[d] = tmp[digits - 1 - d];
    }
    digits
}

fn write_document(buf: &mut Vec<u8>, doc: &Document) {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; 4]); // length back-patched below
    for (k, v) in doc.iter() {
        write_element(buf, k, v);
    }
    buf.push(0);
    let len = (buf.len() - start) as u32;
    buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

fn write_element(buf: &mut Vec<u8>, key: &str, v: &Value) {
    buf.push(type_byte(v));
    buf.extend_from_slice(key.as_bytes());
    buf.push(0);
    write_payload(buf, v);
}

fn type_byte(v: &Value) -> u8 {
    match v {
        Value::Double(_) => T_DOUBLE,
        Value::String(_) => T_STRING,
        Value::Document(_) => T_DOCUMENT,
        Value::Array(_) => T_ARRAY,
        Value::ObjectId(_) => T_OBJECTID,
        Value::Bool(_) => T_BOOL,
        Value::DateTime(_) => T_DATETIME,
        Value::Null => T_NULL,
        Value::Int32(_) => T_INT32,
        Value::Int64(_) => T_INT64,
    }
}

fn write_payload(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => {}
        Value::Bool(b) => buf.push(u8::from(*b)),
        Value::Int32(i) => buf.extend_from_slice(&i.to_le_bytes()),
        Value::Int64(i) => buf.extend_from_slice(&i.to_le_bytes()),
        Value::Double(d) => buf.extend_from_slice(&d.to_le_bytes()),
        Value::DateTime(ms) => buf.extend_from_slice(&ms.to_le_bytes()),
        Value::ObjectId(oid) => buf.extend_from_slice(oid.bytes()),
        Value::String(s) => {
            buf.extend_from_slice(&((s.len() + 1) as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
            buf.push(0);
        }
        Value::Document(d) => write_document(buf, d),
        Value::Array(items) => {
            let mut arr_doc = Document::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                arr_doc.set(i.to_string(), item.clone());
            }
            write_document(buf, &arr_doc);
        }
    }
}

/// Decodes a binary document produced by [`encode_document`].
pub fn decode_document(bytes: &[u8]) -> Result<Document, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let doc = r.read_document()?;
    Ok(doc)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn read_i32(&mut self) -> Result<i32, CodecError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn read_i64(&mut self) -> Result<i64, CodecError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn read_f64(&mut self) -> Result<f64, CodecError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn read_cstring(&mut self) -> Result<String, CodecError> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != 0 {
            self.pos += 1;
        }
        if self.pos >= self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| CodecError::InvalidUtf8)?
            .to_owned();
        self.pos += 1; // consume NUL
        Ok(s)
    }

    fn read_document(&mut self) -> Result<Document, CodecError> {
        let start = self.pos;
        let declared = self.read_i32()?;
        if declared < 5 {
            return Err(CodecError::BadLength);
        }
        let end = start + declared as usize;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let mut doc = Document::new();
        loop {
            let t = self.read_u8()?;
            if t == 0 {
                break;
            }
            let key = self.read_cstring()?;
            let v = self.read_value(t)?;
            doc.set(key, v);
        }
        if self.pos != end {
            return Err(CodecError::BadLength);
        }
        Ok(doc)
    }

    fn read_value(&mut self, t: u8) -> Result<Value, CodecError> {
        Ok(match t {
            T_NULL => Value::Null,
            T_BOOL => Value::Bool(self.read_u8()? != 0),
            T_INT32 => Value::Int32(self.read_i32()?),
            T_INT64 => Value::Int64(self.read_i64()?),
            T_DOUBLE => Value::Double(self.read_f64()?),
            T_DATETIME => Value::DateTime(self.read_i64()?),
            T_OBJECTID => {
                let b = self.take(12)?;
                Value::ObjectId(ObjectId::from_bytes(b.try_into().expect("12 bytes")))
            }
            T_STRING => {
                let len = self.read_i32()?;
                if len < 1 {
                    return Err(CodecError::BadLength);
                }
                let raw = self.take(len as usize)?;
                let (body, nul) = raw.split_at(raw.len() - 1);
                if nul != [0] {
                    return Err(CodecError::BadLength);
                }
                Value::String(
                    std::str::from_utf8(body)
                        .map_err(|_| CodecError::InvalidUtf8)?
                        .to_owned(),
                )
            }
            T_DOCUMENT => Value::Document(self.read_document()?),
            T_ARRAY => {
                let d = self.read_document()?;
                Value::Array(d.into_iter().map(|(_, v)| v).collect())
            }
            other => return Err(CodecError::UnknownType(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{array, doc};

    fn sample() -> Document {
        doc! {
            "_id" => ObjectId::from_parts(1, 2, 3),
            "name" => "Earl Garrison",
            "age" => 36i32,
            "balance" => 1024.5f64,
            "visits" => 99i64,
            "active" => true,
            "deleted" => Value::Null,
            "joined" => Value::DateTime(1_430_000_000_000),
            "tags" => array!["a", "b"],
            "address" => doc!{"city" => "Midway", "zip" => 45220i32},
        }
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        let bytes = encode_document(&d);
        assert_eq!(decode_document(&bytes).unwrap(), d);
    }

    #[test]
    fn encoded_size_matches_encoding() {
        let d = sample();
        assert_eq!(encoded_size(&d), encode_document(&d).len());
    }

    #[test]
    fn empty_document_is_five_bytes() {
        let d = Document::new();
        assert_eq!(encoded_size(&d), 5);
        assert_eq!(encode_document(&d), vec![5, 0, 0, 0, 0]);
    }

    #[test]
    fn array_keys_are_decimal_indices() {
        // An array of 11 elements exercises multi-digit index keys.
        let items: Vec<Value> = (0..11).map(Value::Int32).collect();
        let d = doc! {"xs" => Value::Array(items)};
        let bytes = encode_document(&d);
        assert_eq!(encoded_size(&d), bytes.len());
        assert_eq!(decode_document(&bytes).unwrap(), d);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = encode_document(&sample());
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(decode_document(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_length_detected() {
        let mut bytes = encode_document(&doc! {"a" => 1i32});
        bytes[0] = bytes[0].wrapping_add(1);
        assert!(decode_document(&bytes).is_err());
    }

    #[test]
    fn unknown_type_detected() {
        // document with one element whose type byte is bogus
        let mut bytes = vec![0, 0, 0, 0, 0x7F, b'a', 0, 0];
        let len = bytes.len() as u32;
        bytes[0..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(decode_document(&bytes), Err(CodecError::UnknownType(0x7F)));
    }

    #[test]
    fn itoa_helper() {
        let mut buf = super::itoa_buffer();
        assert_eq!(super::write_itoa(&mut buf, 0), 1);
        assert_eq!(&buf[..1], b"0");
        assert_eq!(super::write_itoa(&mut buf, 12345), 5);
        assert_eq!(&buf[..5], b"12345");
    }
}
