//! # doclite-bson
//!
//! The value model underpinning the document store: a BSON-like dynamic
//! type system with ordered documents, a canonical cross-type sort order,
//! dotted-path navigation, and a binary codec whose size accounting backs
//! the engine's 16 MB document limit and the sharding layer's chunk-size
//! bookkeeping.
//!
//! The paper stores TPC-DS rows as JSON-ish documents in MongoDB; this
//! crate reproduces the pieces of BSON the thesis relies on:
//!
//! * documents are *ordered* key/value maps (`Document`);
//! * every stored document carries a unique 12-byte [`ObjectId`] under
//!   `_id` unless the application supplies its own;
//! * values compare under a canonical type order so B-tree indexes can mix
//!   types in one keyspace ([`Value::canonical_cmp`]);
//! * dotted paths (`"ss_sold_date_sk.d_year"`) navigate embedded documents
//!   and arrays ([`Document::get_path`]).

pub mod codec;
pub mod document;
pub mod json;
pub mod oid;
pub mod path;
pub mod value;

pub use codec::{decode_document, encode_document, CodecError};
pub use document::Document;
pub use oid::ObjectId;
pub use path::{resolve_path_ref, CompiledPath, FieldPath, Resolved};
pub use value::{NumericKey, Value};

/// Maximum encoded size of a single document, mirroring MongoDB's 16 MB
/// cap that drives the thesis's embedded-vs-referenced modeling decision
/// (Section 2.1.1).
pub const MAX_DOCUMENT_SIZE: usize = 16 * 1024 * 1024;

/// Convenience macro for building a [`Document`] literal.
///
/// ```
/// use doclite_bson::{doc, Value};
/// let d = doc! { "a" => 1i64, "b" => "text", "c" => doc!{ "inner" => true } };
/// assert_eq!(d.get("b"), Some(&Value::from("text")));
/// ```
#[macro_export]
macro_rules! doc {
    () => { $crate::Document::new() };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut d = $crate::Document::new();
        $( d.set($k, $crate::Value::from($v)); )+
        d
    }};
}

/// Convenience macro for building an array [`Value`] literal.
///
/// ```
/// use doclite_bson::{array, Value};
/// let a = array![1i64, 2i64, 3i64];
/// assert!(matches!(a, Value::Array(ref v) if v.len() == 3));
/// ```
#[macro_export]
macro_rules! array {
    () => { $crate::Value::Array(Vec::new()) };
    ( $( $v:expr ),+ $(,)? ) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($v) ),+ ])
    };
}
