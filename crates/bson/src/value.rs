//! The dynamic value type and its canonical cross-type ordering.

use crate::{Document, ObjectId};
use std::cmp::Ordering;

/// A dynamically typed value, mirroring the BSON types the thesis's
/// workload uses: null, booleans, 32/64-bit integers, doubles, strings,
/// millisecond datetimes, ObjectIds, arrays, and embedded documents.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int32(i32),
    Int64(i64),
    Double(f64),
    String(String),
    /// Milliseconds since the Unix epoch (`ISODate` in mongo shell terms).
    DateTime(i64),
    ObjectId(ObjectId),
    Array(Vec<Value>),
    Document(Document),
}

/// Canonical type rank used for cross-type comparisons, following
/// MongoDB's BSON comparison order: Null < Numbers < String < Document <
/// Array < Bool < ObjectId < DateTime. (The subset of types we implement.)
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int32(_) | Value::Int64(_) | Value::Double(_) => 1,
        Value::String(_) => 2,
        Value::Document(_) => 3,
        Value::Array(_) => 4,
        Value::Bool(_) => 5,
        Value::ObjectId(_) => 6,
        Value::DateTime(_) => 7,
    }
}

impl Value {
    /// Returns the value's numeric content as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int32(i) => Some(f64::from(i)),
            Value::Int64(i) => Some(i as f64),
            Value::Double(d) => Some(d),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer (or an integral
    /// double).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int32(i) => Some(i64::from(i)),
            Value::Int64(i) => Some(i),
            Value::Double(d) if d.fract() == 0.0 && d.is_finite() => Some(d as i64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the embedded document, if any.
    pub fn as_document(&self) -> Option<&Document> {
        match self {
            Value::Document(d) => Some(d),
            _ => None,
        }
    }

    /// Returns the array elements, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if the value is numeric (Int32/Int64/Double).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int32(_) | Value::Int64(_) | Value::Double(_))
    }

    /// Truthiness as used by aggregation expressions (`$cond`): everything
    /// is truthy except `Null`, `false`, and numeric zero.
    pub fn is_truthy(&self) -> bool {
        match *self {
            Value::Null => false,
            Value::Bool(b) => b,
            Value::Int32(i) => i != 0,
            Value::Int64(i) => i != 0,
            Value::Double(d) => d != 0.0,
            _ => true,
        }
    }

    /// A short name of the value's type for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int32(_) => "int32",
            Value::Int64(_) => "int64",
            Value::Double(_) => "double",
            Value::String(_) => "string",
            Value::DateTime(_) => "datetime",
            Value::ObjectId(_) => "objectId",
            Value::Array(_) => "array",
            Value::Document(_) => "document",
        }
    }

    /// Total order across all values: types compare by canonical rank, and
    /// values of comparable types (all numerics are mutually comparable)
    /// compare by content. NaN sorts below all other doubles, making the
    /// order total — a requirement for B-tree index keys.
    pub fn canonical_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (type_rank(self), type_rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                total_f64_cmp(x, y)
            }
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Document(a), Value::Document(b)) => doc_cmp(a, b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.canonical_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::ObjectId(a), Value::ObjectId(b)) => a.cmp(b),
            (Value::DateTime(a), Value::DateTime(b)) => a.cmp(b),
            _ => unreachable!("equal ranks imply same comparison family"),
        }
    }

    /// Equality under the canonical order (so `Int32(1) == Int64(1)` —
    /// match-language equality is numeric-type-insensitive, like MongoDB).
    pub fn canonical_eq(&self, other: &Value) -> bool {
        self.canonical_cmp(other) == Ordering::Equal
    }
}

/// Total order over f64 with NaN smallest; -0.0 and 0.0 compare equal.
fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.partial_cmp(&b).expect("non-NaN doubles compare"),
    }
}

/// Documents compare field-by-field in insertion order: first by key, then
/// by value, shorter document first on a shared prefix.
fn doc_cmp(a: &Document, b: &Document) -> Ordering {
    for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
        let c = ka.cmp(kb);
        if c != Ordering::Equal {
            return c;
        }
        let c = va.canonical_cmp(vb);
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<ObjectId> for Value {
    fn from(v: ObjectId) -> Self {
        Value::ObjectId(v)
    }
}
impl From<Document> for Value {
    fn from(v: Document) -> Self {
        Value::Document(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int32(5).canonical_eq(&Value::Int64(5)));
        assert!(Value::Int64(5).canonical_eq(&Value::Double(5.0)));
        assert!(!Value::Int32(5).canonical_eq(&Value::Double(5.5)));
    }

    #[test]
    fn type_order_is_stable() {
        let vals = [
            Value::Null,
            Value::Int32(0),
            Value::String("".into()),
            Value::Document(Document::new()),
            Value::Array(vec![]),
            Value::Bool(false),
            Value::ObjectId(ObjectId::from_parts(0, 0, 0)),
            Value::DateTime(0),
        ];
        for w in vals.windows(2) {
            assert_eq!(w[0].canonical_cmp(&w[1]), Ordering::Less, "{w:?}");
        }
    }

    #[test]
    fn nan_sorts_first_among_numbers() {
        assert_eq!(
            Value::Double(f64::NAN).canonical_cmp(&Value::Double(f64::NEG_INFINITY)),
            Ordering::Less
        );
        assert_eq!(
            Value::Double(f64::NAN).canonical_cmp(&Value::Double(f64::NAN)),
            Ordering::Equal
        );
    }

    #[test]
    fn array_comparison_is_lexicographic() {
        let a = Value::Array(vec![Value::Int32(1), Value::Int32(2)]);
        let b = Value::Array(vec![Value::Int32(1), Value::Int32(3)]);
        let c = Value::Array(vec![Value::Int32(1)]);
        assert_eq!(a.canonical_cmp(&b), Ordering::Less);
        assert_eq!(c.canonical_cmp(&a), Ordering::Less);
    }

    #[test]
    fn document_comparison_checks_keys_then_values() {
        let a = doc! {"x" => 1i64};
        let b = doc! {"x" => 2i64};
        let c = doc! {"y" => 0i64};
        assert_eq!(Value::from(a.clone()).canonical_cmp(&Value::from(b)), Ordering::Less);
        assert_eq!(Value::from(a).canonical_cmp(&Value::from(c)), Ordering::Less);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Int32(0).is_truthy());
        assert!(!Value::Double(0.0).is_truthy());
        assert!(Value::String(String::new()).is_truthy());
        assert!(Value::Int64(-1).is_truthy());
    }

    #[test]
    fn as_i64_accepts_integral_doubles_only() {
        assert_eq!(Value::Double(3.0).as_i64(), Some(3));
        assert_eq!(Value::Double(3.5).as_i64(), None);
        assert_eq!(Value::Double(f64::INFINITY).as_i64(), None);
    }

    #[test]
    fn option_from_maps_none_to_null() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(4i64)), Value::Int64(4));
    }
}
