//! The dynamic value type and its canonical cross-type ordering.

use crate::{Document, ObjectId};
use std::cmp::Ordering;

/// A dynamically typed value, mirroring the BSON types the thesis's
/// workload uses: null, booleans, 32/64-bit integers, doubles, strings,
/// millisecond datetimes, ObjectIds, arrays, and embedded documents.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int32(i32),
    Int64(i64),
    Double(f64),
    String(String),
    /// Milliseconds since the Unix epoch (`ISODate` in mongo shell terms).
    DateTime(i64),
    ObjectId(ObjectId),
    Array(Vec<Value>),
    Document(Document),
}

/// Canonical type rank used for cross-type comparisons, following
/// MongoDB's BSON comparison order: Null < Numbers < String < Document <
/// Array < Bool < ObjectId < DateTime. (The subset of types we implement.)
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int32(_) | Value::Int64(_) | Value::Double(_) => 1,
        Value::String(_) => 2,
        Value::Document(_) => 3,
        Value::Array(_) => 4,
        Value::Bool(_) => 5,
        Value::ObjectId(_) => 6,
        Value::DateTime(_) => 7,
    }
}

impl Value {
    /// Returns the value's numeric content as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int32(i) => Some(f64::from(i)),
            Value::Int64(i) => Some(i as f64),
            Value::Double(d) => Some(d),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer (or an integral
    /// double).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int32(i) => Some(i64::from(i)),
            Value::Int64(i) => Some(i),
            Value::Double(d) if d.fract() == 0.0 && d.is_finite() => Some(d as i64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the embedded document, if any.
    pub fn as_document(&self) -> Option<&Document> {
        match self {
            Value::Document(d) => Some(d),
            _ => None,
        }
    }

    /// Returns the array elements, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if the value is numeric (Int32/Int64/Double).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int32(_) | Value::Int64(_) | Value::Double(_))
    }

    /// Truthiness as used by aggregation expressions (`$cond`): everything
    /// is truthy except `Null`, `false`, and numeric zero.
    pub fn is_truthy(&self) -> bool {
        match *self {
            Value::Null => false,
            Value::Bool(b) => b,
            Value::Int32(i) => i != 0,
            Value::Int64(i) => i != 0,
            Value::Double(d) => d != 0.0,
            _ => true,
        }
    }

    /// A short name of the value's type for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int32(_) => "int32",
            Value::Int64(_) => "int64",
            Value::Double(_) => "double",
            Value::String(_) => "string",
            Value::DateTime(_) => "datetime",
            Value::ObjectId(_) => "objectId",
            Value::Array(_) => "array",
            Value::Document(_) => "document",
        }
    }

    /// Total order across all values: types compare by canonical rank, and
    /// values of comparable types (all numerics are mutually comparable)
    /// compare by content. NaN sorts below all other doubles, making the
    /// order total — a requirement for B-tree index keys.
    pub fn canonical_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (type_rank(self), type_rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) if a.is_numeric() && b.is_numeric() => numeric_cmp(a, b),
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Document(a), Value::Document(b)) => doc_cmp(a, b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.canonical_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::ObjectId(a), Value::ObjectId(b)) => a.cmp(b),
            (Value::DateTime(a), Value::DateTime(b)) => a.cmp(b),
            _ => unreachable!("equal ranks imply same comparison family"),
        }
    }

    /// Equality under the canonical order (so `Int32(1) == Int64(1)` —
    /// match-language equality is numeric-type-insensitive, like MongoDB).
    pub fn canonical_eq(&self, other: &Value) -> bool {
        self.canonical_cmp(other) == Ordering::Equal
    }
}

/// Total order over f64 with NaN smallest; -0.0 and 0.0 compare equal.
fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.partial_cmp(&b).expect("non-NaN doubles compare"),
    }
}

/// The integer content of a numeric value, `None` for doubles.
fn int_of(v: &Value) -> Option<i64> {
    match *v {
        Value::Int32(i) => Some(i64::from(i)),
        Value::Int64(i) => Some(i),
        _ => None,
    }
}

/// Exact comparison of two numerics: integers compare as `i64`, doubles
/// as doubles, and the mixed case compares the exact mathematical
/// values — an `i64` is never rounded through `f64` first, so
/// `i64::MAX` and `i64::MAX - 1` stay distinct (they both used to
/// collapse to 2^63).
fn numeric_cmp(a: &Value, b: &Value) -> Ordering {
    match (int_of(a), int_of(b)) {
        (Some(x), Some(y)) => x.cmp(&y),
        (Some(x), None) => cmp_i64_f64(x, b.as_f64().expect("numeric")),
        (None, Some(y)) => cmp_i64_f64(y, a.as_f64().expect("numeric")).reverse(),
        (None, None) => {
            total_f64_cmp(a.as_f64().expect("numeric"), b.as_f64().expect("numeric"))
        }
    }
}

/// 2^63 as f64, exactly representable; every finite double with
/// `|d| < I64_BOUND_F` truncates to a value `i64` can hold.
const I64_BOUND_F: f64 = 9_223_372_036_854_775_808.0;

/// Exact `i64` vs `f64` comparison (NaN smallest, -0.0 == 0).
fn cmp_i64_f64(i: i64, f: f64) -> Ordering {
    if f.is_nan() {
        return Ordering::Greater;
    }
    if f >= I64_BOUND_F {
        return Ordering::Less;
    }
    if f < -I64_BOUND_F {
        return Ordering::Greater;
    }
    // f is finite in [-2^63, 2^63); its truncation is exactly
    // representable both as f64 and as i64.
    let ft = f.trunc();
    match i.cmp(&(ft as i64)) {
        // Equal integer parts: the fractional remainder decides.
        Ordering::Equal => ft.partial_cmp(&f).expect("finite doubles compare"),
        ord => ord,
    }
}

/// Exact total-order key for numeric values: the sign class plus a
/// normalized base-2 (exponent, mantissa) pair that represents the
/// mathematical value exactly for every `i64` and every finite `f64`.
///
/// The magnitude is written `m × 2^k` with the mantissa `m` normalized
/// so its top bit is set (`m ∈ [2^63, 2^64)`); magnitudes then order
/// lexicographically by `(k, m)`. Negative values store the bitwise
/// complements of both fields so the *derived* ordering — variant rank
/// first, then fields — is the canonical numeric order, and a
/// big-endian dump of the fields is byte-order-preserving. Key equality
/// is exactly [`Value::canonical_eq`] restricted to numerics, which is
/// what makes this the shared normal form for hash keys and key-byte
/// encodings: `i64::MAX` and `2^63 as f64` get distinct keys where an
/// `as f64` round-trip would collide them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NumericKey {
    /// NaN sorts below every other number.
    Nan,
    /// Fields are complements of the positive encoding so more-negative
    /// values sort (and byte-compare) first.
    Negative { ck: u16, cm: u64 },
    /// All of `0i32/0i64/0.0/-0.0`.
    Zero,
    Positive { k: u16, m: u64 },
}

/// Bias added to the normalized exponent so it fits an ordered `u16`:
/// `k` ranges over `[-1137, 960]` (subnormal doubles at the bottom,
/// `f64::MAX` at the top).
const NUMKEY_EXP_BIAS: i32 = 1137;

impl NumericKey {
    /// The key for a numeric value; `None` for non-numerics.
    pub fn of(v: &Value) -> Option<NumericKey> {
        match *v {
            Value::Int32(i) => Some(Self::from_int(i64::from(i))),
            Value::Int64(i) => Some(Self::from_int(i)),
            Value::Double(d) => Some(Self::from_f64(d)),
            _ => None,
        }
    }

    fn from_int(i: i64) -> NumericKey {
        if i == 0 {
            return NumericKey::Zero;
        }
        Self::from_parts(i < 0, i.unsigned_abs(), 0)
    }

    fn from_f64(d: f64) -> NumericKey {
        if d.is_nan() {
            return NumericKey::Nan;
        }
        if d == 0.0 {
            return NumericKey::Zero; // collapses -0.0
        }
        let bits = d.abs().to_bits();
        let raw_exp = (bits >> 52) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        // Normal doubles carry the implicit leading bit; subnormals
        // (raw exponent 0) are `frac × 2^-1074` directly.
        let (mant, exp) = if raw_exp == 0 {
            (frac, -1074)
        } else {
            (frac | (1u64 << 52), raw_exp - 1023 - 52)
        };
        Self::from_parts(d < 0.0, mant, exp)
    }

    /// Builds the key for `±mant × 2^exp` with `mant != 0`.
    fn from_parts(neg: bool, mant: u64, exp: i32) -> NumericKey {
        let shift = mant.leading_zeros() as i32;
        let m = mant << shift;
        let k = (exp - shift + NUMKEY_EXP_BIAS) as u16;
        if neg {
            NumericKey::Negative { ck: !k, cm: !m }
        } else {
            NumericKey::Positive { k, m }
        }
    }
}

/// Documents compare field-by-field in insertion order: first by key, then
/// by value, shorter document first on a shared prefix.
fn doc_cmp(a: &Document, b: &Document) -> Ordering {
    for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
        let c = ka.cmp(kb);
        if c != Ordering::Equal {
            return c;
        }
        let c = va.canonical_cmp(vb);
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<ObjectId> for Value {
    fn from(v: ObjectId) -> Self {
        Value::ObjectId(v)
    }
}
impl From<Document> for Value {
    fn from(v: Document) -> Self {
        Value::Document(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int32(5).canonical_eq(&Value::Int64(5)));
        assert!(Value::Int64(5).canonical_eq(&Value::Double(5.0)));
        assert!(!Value::Int32(5).canonical_eq(&Value::Double(5.5)));
    }

    #[test]
    fn type_order_is_stable() {
        let vals = [
            Value::Null,
            Value::Int32(0),
            Value::String("".into()),
            Value::Document(Document::new()),
            Value::Array(vec![]),
            Value::Bool(false),
            Value::ObjectId(ObjectId::from_parts(0, 0, 0)),
            Value::DateTime(0),
        ];
        for w in vals.windows(2) {
            assert_eq!(w[0].canonical_cmp(&w[1]), Ordering::Less, "{w:?}");
        }
    }

    #[test]
    fn nan_sorts_first_among_numbers() {
        assert_eq!(
            Value::Double(f64::NAN).canonical_cmp(&Value::Double(f64::NEG_INFINITY)),
            Ordering::Less
        );
        assert_eq!(
            Value::Double(f64::NAN).canonical_cmp(&Value::Double(f64::NAN)),
            Ordering::Equal
        );
    }

    #[test]
    fn array_comparison_is_lexicographic() {
        let a = Value::Array(vec![Value::Int32(1), Value::Int32(2)]);
        let b = Value::Array(vec![Value::Int32(1), Value::Int32(3)]);
        let c = Value::Array(vec![Value::Int32(1)]);
        assert_eq!(a.canonical_cmp(&b), Ordering::Less);
        assert_eq!(c.canonical_cmp(&a), Ordering::Less);
    }

    #[test]
    fn document_comparison_checks_keys_then_values() {
        let a = doc! {"x" => 1i64};
        let b = doc! {"x" => 2i64};
        let c = doc! {"y" => 0i64};
        assert_eq!(Value::from(a.clone()).canonical_cmp(&Value::from(b)), Ordering::Less);
        assert_eq!(Value::from(a).canonical_cmp(&Value::from(c)), Ordering::Less);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Int32(0).is_truthy());
        assert!(!Value::Double(0.0).is_truthy());
        assert!(Value::String(String::new()).is_truthy());
        assert!(Value::Int64(-1).is_truthy());
    }

    #[test]
    fn as_i64_accepts_integral_doubles_only() {
        assert_eq!(Value::Double(3.0).as_i64(), Some(3));
        assert_eq!(Value::Double(3.5).as_i64(), None);
        assert_eq!(Value::Double(f64::INFINITY).as_i64(), None);
    }

    #[test]
    fn option_from_maps_none_to_null() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(4i64)), Value::Int64(4));
    }

    const BIG: i64 = 1 << 53; // first i64 the f64 mantissa can't refine

    #[test]
    fn large_integers_stay_distinct() {
        // The old f64-unified comparison collapsed all of these.
        assert_eq!(
            Value::Int64(i64::MAX).canonical_cmp(&Value::Int64(i64::MAX - 1)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Int64(BIG + 1).canonical_cmp(&Value::Int64(BIG)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Int64(-(BIG + 1)).canonical_cmp(&Value::Int64(-BIG)),
            Ordering::Less
        );
        assert_eq!(
            Value::Int64(i64::MIN).canonical_cmp(&Value::Int64(i64::MIN + 1)),
            Ordering::Less
        );
    }

    #[test]
    fn int_double_mixed_comparison_is_exact() {
        // 2^53 is exactly representable; 2^53 + 1 rounds down to it
        // under `as f64`, which used to make these "equal".
        assert_eq!(
            Value::Int64(BIG + 1).canonical_cmp(&Value::Double(BIG as f64)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Double(BIG as f64).canonical_cmp(&Value::Int64(BIG + 1)),
            Ordering::Less
        );
        assert!(Value::Int64(BIG).canonical_eq(&Value::Double(BIG as f64)));
        // i64::MAX rounds *up* to 2^63 under `as f64`.
        assert_eq!(
            Value::Int64(i64::MAX).canonical_cmp(&Value::Double(9_223_372_036_854_775_808.0)),
            Ordering::Less
        );
        // i64::MIN == -2^63 exactly.
        assert!(Value::Int64(i64::MIN).canonical_eq(&Value::Double(-9_223_372_036_854_775_808.0)));
        // Out-of-range doubles straddle the whole i64 line.
        assert_eq!(
            Value::Int64(i64::MAX).canonical_cmp(&Value::Double(1e300)),
            Ordering::Less
        );
        assert_eq!(
            Value::Int64(i64::MIN).canonical_cmp(&Value::Double(-1e300)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Int64(i64::MAX).canonical_cmp(&Value::Double(f64::INFINITY)),
            Ordering::Less
        );
        assert_eq!(
            Value::Int64(0).canonical_cmp(&Value::Double(f64::NAN)),
            Ordering::Greater
        );
        // Fractional parts break integer-part ties in both directions.
        assert_eq!(
            Value::Int64(3).canonical_cmp(&Value::Double(3.5)),
            Ordering::Less
        );
        assert_eq!(
            Value::Int64(-3).canonical_cmp(&Value::Double(-3.5)),
            Ordering::Greater
        );
        assert!(Value::Int64(0).canonical_eq(&Value::Double(-0.0)));
    }

    #[test]
    fn numeric_key_matches_canonical_order() {
        let samples = [
            Value::Double(f64::NAN),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(-1e300),
            Value::Int64(i64::MIN),
            Value::Int64(i64::MIN + 1),
            Value::Int64(-(BIG + 1)),
            Value::Double(-(BIG as f64)),
            Value::Double(-2.5),
            Value::Int32(-2),
            Value::Double(-f64::MIN_POSITIVE), // subnormal boundary
            Value::Int64(0),
            Value::Double(-0.0),
            Value::Double(f64::MIN_POSITIVE),
            Value::Double(0.5),
            Value::Int32(1),
            Value::Double(1.5),
            Value::Int64(BIG),
            Value::Double(BIG as f64),
            Value::Int64(BIG + 1),
            Value::Int64(i64::MAX - 1),
            Value::Int64(i64::MAX),
            Value::Double(9_223_372_036_854_775_808.0),
            Value::Double(f64::MAX),
            Value::Double(f64::INFINITY),
        ];
        for a in &samples {
            for b in &samples {
                let ka = NumericKey::of(a).unwrap();
                let kb = NumericKey::of(b).unwrap();
                assert_eq!(ka.cmp(&kb), a.canonical_cmp(b), "a={a:?} b={b:?}");
            }
        }
        assert_eq!(NumericKey::of(&Value::from("x")), None);
    }
}
