//! The experimental matrix of thesis Table 4.1: two dataset scales ×
//! {normalized sharded, normalized stand-alone, denormalized
//! stand-alone}, and the machinery to set each up and time the workload
//! queries on it.
//!
//! Index policy reproduces the thesis's deployments: **no secondary
//! indexes** exist on the normalized base collections — except the
//! shard-key indexes the sharded cluster requires (MongoDB creates them
//! on `shardCollection`). That asymmetry is the mechanism behind the
//! paper's one inversion: Query 50's semi-join carries the fact shard
//! key, so the cluster serves it with targeted index lookups while the
//! stand-alone system collection-scans.

use crate::denormalize::{create_denormalized, denormalized_name, embed_store_returns};
use crate::migrate::load_table_direct;
use crate::queries::{run_denormalized, run_normalized};
use crate::store::Store;
use doclite_bson::Document;
use doclite_docstore::{Database, Result};
use doclite_sharding::{NetworkModel, ShardKey, ShardedCluster};
use doclite_tpcds::{Generator, QueryId, QueryParams, TableId};
use std::time::{Duration, Instant};

/// Normalized vs. denormalized document design (thesis Section 4.1.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataModel {
    Normalized,
    Denormalized,
}

/// Stand-alone vs. 3-shard cluster deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deployment {
    Standalone,
    Sharded,
}

/// One row of Table 4.1.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentSpec {
    /// Experiment number 1–6.
    pub id: u8,
    /// Scale factor of the dataset.
    pub sf: f64,
    pub model: DataModel,
    pub deployment: Deployment,
}

impl ExperimentSpec {
    /// The six experiments, parameterized by the two scale factors that
    /// stand in for the thesis's 1 GB and 5 GB datasets.
    pub fn table_4_1(small_sf: f64, large_sf: f64) -> [ExperimentSpec; 6] {
        use DataModel::*;
        use Deployment::*;
        [
            ExperimentSpec { id: 1, sf: small_sf, model: Normalized, deployment: Sharded },
            ExperimentSpec { id: 2, sf: small_sf, model: Normalized, deployment: Standalone },
            ExperimentSpec { id: 3, sf: small_sf, model: Denormalized, deployment: Standalone },
            ExperimentSpec { id: 4, sf: large_sf, model: Normalized, deployment: Sharded },
            ExperimentSpec { id: 5, sf: large_sf, model: Normalized, deployment: Standalone },
            ExperimentSpec { id: 6, sf: large_sf, model: Denormalized, deployment: Standalone },
        ]
    }

    /// Short label, e.g. `"Experiment 3"`.
    pub fn label(&self) -> String {
        format!("Experiment {}", self.id)
    }

    /// Description in the style of Section 4.2's list.
    pub fn describe(&self) -> String {
        format!(
            "{} / {} data model / {} system",
            match self.model {
                DataModel::Normalized => "Normalized",
                DataModel::Denormalized => "Denormalized",
            },
            match self.model {
                DataModel::Normalized => "normalized",
                DataModel::Denormalized => "denormalized",
            },
            match self.deployment {
                Deployment::Standalone => "stand-alone",
                Deployment::Sharded => "sharded",
            }
        )
    }
}

/// The tables the four workload queries touch (3 facts + 9 dimensions,
/// Section 3.4).
pub const WORKLOAD_TABLES: [TableId; 12] = [
    TableId::StoreSales,
    TableId::StoreReturns,
    TableId::Inventory,
    TableId::DateDim,
    TableId::Item,
    TableId::Customer,
    TableId::CustomerAddress,
    TableId::CustomerDemographics,
    TableId::HouseholdDemographics,
    TableId::Store,
    TableId::Promotion,
    TableId::Warehouse,
];

/// Extra tables only the denormalizer's FK catalog reaches (time_dim via
/// `ss_sold_time_sk`, reason via `sr_reason_sk`).
const DENORM_EXTRA_TABLES: [TableId; 2] = [TableId::Reason, TableId::TimeDim];

/// Number of shards in the cluster, per thesis Section 3.3.
pub const N_SHARDS: usize = 3;

/// A prepared environment: loaded data on a deployment.
pub enum Environment {
    Standalone(Database),
    Sharded(Box<ShardedCluster>),
}

impl Environment {
    /// The deployment-agnostic store handle.
    pub fn store(&self) -> &dyn Store {
        match self {
            Environment::Standalone(db) => db,
            Environment::Sharded(cluster) => cluster.router(),
        }
    }

    /// The cluster, when sharded.
    pub fn cluster(&self) -> Option<&ShardedCluster> {
        match self {
            Environment::Sharded(c) => Some(c.as_ref()),
            _ => None,
        }
    }
}

/// Shard-key assignment for the fact collections (Section 2.1.3.3's
/// guidance applied to this workload): the sales/returns facts shard by
/// ticket number (high cardinality, range partitioning — and the key
/// Query 50's predicates carry), inventory by hashed warehouse (a
/// deliberately poor, low-cardinality key that produces the jumbo-chunk
/// behaviour of Fig 2.7 and leaves every inventory query a broadcast).
pub fn fact_shard_keys() -> Vec<(TableId, ShardKey)> {
    vec![
        (TableId::StoreSales, ShardKey::range(["ss_ticket_number"])),
        (TableId::StoreReturns, ShardKey::range(["sr_ticket_number"])),
        (TableId::Inventory, ShardKey::hashed("inv_warehouse_sk")),
    ]
}

/// Options controlling environment construction.
#[derive(Clone, Debug)]
pub struct SetupOptions {
    /// Network model for sharded deployments.
    pub network: NetworkModel,
    /// Max chunk size for sharded collections; scaled-down datasets need
    /// a scaled-down threshold to split into a realistic chunk count.
    pub max_chunk_size: usize,
    /// Replica-set members per shard. 1 (the default) reproduces the
    /// thesis's unreplicated evaluation cluster; 3 matches its Fig 2.5
    /// production topology and enables failover experiments.
    pub replicas_per_shard: usize,
    /// Crash durability for sharded members: `None` (the default) keeps
    /// every member in-memory like the thesis's evaluation cluster;
    /// `Some` gives each member a WAL + checkpoints under the configured
    /// directory, enabling crash/recovery experiments and the recovery
    /// ablation. Standalone deployments ignore it.
    pub durability: Option<doclite_sharding::DurabilityConfig>,
    /// Aggregation executor for the experiment: `Some(mode)` installs
    /// that mode as the process-wide default during setup (e.g.
    /// `ExecMode::Parallel` for the morsel-driven executor sweeps);
    /// `None` (the default) leaves the ambient default untouched, so
    /// concurrent test binaries don't fight over the global knob.
    pub exec_mode: Option<doclite_docstore::ExecMode>,
}

impl Default for SetupOptions {
    fn default() -> Self {
        SetupOptions {
            network: NetworkModel::lan(),
            max_chunk_size: 1 << 20,
            replicas_per_shard: 1,
            durability: None,
            exec_mode: None,
        }
    }
}

/// Builds and loads the environment for an experiment (the thesis's
/// workload subset of tables only; full 24-table loads are the province
/// of the Table 4.3 harness).
pub fn setup_environment(spec: &ExperimentSpec, opts: &SetupOptions) -> Result<Environment> {
    if let Some(mode) = opts.exec_mode {
        doclite_docstore::set_default_exec_mode(mode);
    }
    let gen = Generator::new(spec.sf);
    match spec.deployment {
        Deployment::Standalone => {
            let db = Database::new(format!("Dataset_exp{}", spec.id));
            load_workload(&db, &gen, spec.model == DataModel::Denormalized)?;
            if spec.model == DataModel::Denormalized {
                // The fast single-pass builder; result-identical to the
                // algorithmic EmbedDocuments path (see fastdn's tests).
                crate::fastdn::build_denormalized_fast(&db)?;
            }
            Ok(Environment::Standalone(db))
        }
        Deployment::Sharded => {
            let cluster = ShardedCluster::with_config(doclite_sharding::ClusterConfig {
                n_shards: N_SHARDS,
                replicas_per_shard: opts.replicas_per_shard.max(1),
                db_name: format!("Dataset_exp{}", spec.id),
                network: opts.network,
                durability: opts.durability.clone(),
                ..doclite_sharding::ClusterConfig::default()
            });
            for (table, key) in fact_shard_keys() {
                cluster.shard_collection(table.name(), key, opts.max_chunk_size)?;
            }
            load_workload(
                cluster.router(),
                &gen,
                spec.model == DataModel::Denormalized,
            )?;
            cluster.balance()?;
            if spec.model == DataModel::Denormalized {
                crate::fastdn::build_denormalized_fast(cluster.router())?;
            }
            Ok(Environment::Sharded(Box::new(cluster)))
        }
    }
}

fn load_workload(store: &dyn Store, gen: &Generator, with_extra: bool) -> Result<u64> {
    let mut total = 0;
    for t in WORKLOAD_TABLES {
        total += load_table_direct(store, gen, t).map_err(|e| match e {
            crate::migrate::MigrateError::Engine(e) => e,
            crate::migrate::MigrateError::Io(e) => {
                doclite_docstore::Error::InvalidQuery(format!("io during load: {e}"))
            }
        })?;
    }
    if with_extra {
        for t in DENORM_EXTRA_TABLES {
            total += load_table_direct(store, gen, t).map_err(|e| match e {
                crate::migrate::MigrateError::Engine(e) => e,
                crate::migrate::MigrateError::Io(e) => {
                    doclite_docstore::Error::InvalidQuery(format!("io during load: {e}"))
                }
            })?;
        }
    }
    Ok(total)
}

/// Builds the three denormalized fact collections the workload reads
/// (`store_sales_dn` with embedded returns, `store_returns_dn`,
/// `inventory_dn`), then indexes the embedded paths the workload
/// predicates on. The thesis notes this freedom explicitly
/// (Section 4.4): on the stand-alone denormalized model "indexing can be
/// applied to any field" — and its sub-second denormalized runtimes over
/// millions of documents are only reachable with such indexes.
pub fn build_denormalized(store: &dyn Store) -> Result<()> {
    use doclite_docstore::IndexDef;
    let ss_dn = denormalized_name(TableId::StoreSales);
    let sr_dn = denormalized_name(TableId::StoreReturns);
    let inv_dn = denormalized_name(TableId::Inventory);
    create_denormalized(store, TableId::StoreSales, &ss_dn)?;
    create_denormalized(store, TableId::StoreReturns, &sr_dn)?;
    create_denormalized(store, TableId::Inventory, &inv_dn)?;
    embed_store_returns(store, &ss_dn, &sr_dn)?;
    // Q7: the most selective equality (1 of 7 education levels).
    store.create_index(&ss_dn, IndexDef::single("ss_cdemo_sk.cd_education_status"))?;
    // Q46: sale year (3 of 5 selling years, leading a weekend filter).
    store.create_index(&ss_dn, IndexDef::single("ss_sold_date_sk.d_year"))?;
    // Q50: return-month year — only sale lines with an embedded return
    // in the target year have a non-Null key.
    store.create_index(&ss_dn, IndexDef::single("ss_return.sr_returned_date_sk.d_year"))?;
    // Q21: the price band.
    store.create_index(&inv_dn, IndexDef::single("inv_item_sk.i_current_price"))?;
    Ok(())
}

/// Runs one query once in an environment, returning the result set and
/// the measured time. For sharded deployments the simulated network time
/// accumulated during the run (parallel-leg accounting) is added to the
/// wall-clock CPU time, standing in for the paper's real cluster links.
pub fn run_query_once(
    env: &Environment,
    query: QueryId,
    params: &QueryParams,
    model: DataModel,
) -> Result<(Vec<Document>, Duration)> {
    let store = env.store();
    let net_before = env
        .cluster()
        .map(|c| c.router().net_stats().parallel_time())
        .unwrap_or_default();
    let start = Instant::now();
    let docs = match model {
        DataModel::Denormalized => run_denormalized(store, query, params)?,
        DataModel::Normalized => run_normalized(store, query, params)?,
    };
    let mut elapsed = start.elapsed();
    if let Some(cluster) = env.cluster() {
        let net_after = cluster.router().net_stats().parallel_time();
        elapsed += net_after.saturating_sub(net_before);
    }
    Ok((docs, elapsed))
}

/// Result of timing one query in one experiment.
#[derive(Clone, Debug)]
pub struct QueryTiming {
    pub query: QueryId,
    /// Best of the measured runs (Table 4.5 reports best-of-5 with warm
    /// caches).
    pub best: Duration,
    /// All runs, in order.
    pub runs: Vec<Duration>,
    /// Result-set size in documents.
    pub result_docs: usize,
}

/// Times a query `runs` times (the thesis runs each 5×, keeps the best).
pub fn time_query(
    env: &Environment,
    query: QueryId,
    params: &QueryParams,
    model: DataModel,
    runs: usize,
) -> Result<QueryTiming> {
    assert!(runs > 0);
    let mut all = Vec::with_capacity(runs);
    let mut result_docs = 0;
    for _ in 0..runs {
        let (docs, took) = run_query_once(env, query, params, model)?;
        result_docs = docs.len();
        all.push(took);
    }
    let best = all.iter().copied().min().expect("runs > 0");
    Ok(QueryTiming { query, best, runs: all, result_docs })
}

/// Runs the full Table 4.5 cell set for one experiment.
pub fn run_experiment(
    spec: &ExperimentSpec,
    opts: &SetupOptions,
    runs: usize,
) -> Result<Vec<QueryTiming>> {
    let env = setup_environment(spec, opts)?;
    let params = QueryParams::for_scale(spec.sf);
    QueryId::ALL
        .iter()
        .map(|&q| time_query(&env, q, &params, spec.model, runs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SF: f64 = 0.002;

    fn opts() -> SetupOptions {
        SetupOptions {
            network: NetworkModel::free(),
            max_chunk_size: 64 * 1024,
            ..SetupOptions::default()
        }
    }

    #[test]
    fn table_4_1_matrix_matches_thesis() {
        let m = ExperimentSpec::table_4_1(1.0, 5.0);
        assert_eq!(m.len(), 6);
        assert_eq!(m[0].deployment, Deployment::Sharded);
        assert_eq!(m[2].model, DataModel::Denormalized);
        assert!((m[3].sf - 5.0).abs() < f64::EPSILON);
        assert_eq!(m[5].describe(), "Denormalized / denormalized data model / stand-alone system");
    }

    #[test]
    fn standalone_normalized_env_loads_workload_tables() {
        let spec = ExperimentSpec {
            id: 2,
            sf: TEST_SF,
            model: DataModel::Normalized,
            deployment: Deployment::Standalone,
        };
        let env = setup_environment(&spec, &opts()).unwrap();
        let gen = Generator::new(TEST_SF);
        for t in WORKLOAD_TABLES {
            assert_eq!(
                env.store().collection_len(t.name()) as u64,
                gen.row_count(t),
                "{t}"
            );
        }
    }

    #[test]
    fn sharded_env_distributes_facts_and_keeps_dims_on_primary() {
        let spec = ExperimentSpec {
            id: 1,
            sf: TEST_SF,
            model: DataModel::Normalized,
            deployment: Deployment::Sharded,
        };
        let env = setup_environment(&spec, &opts()).unwrap();
        let cluster = env.cluster().unwrap();
        let gen = Generator::new(TEST_SF);
        assert_eq!(
            cluster.router().collection_len("store_sales") as u64,
            gen.row_count(TableId::StoreSales)
        );
        // Dimensions stay unsharded on the primary shard.
        assert_eq!(
            cluster.router().shards()[0]
                .db()
                .get_collection("date_dim")
                .unwrap()
                .len() as u64,
            gen.row_count(TableId::DateDim)
        );
        assert!(cluster.router().shards()[1].db().get_collection("date_dim").is_err());
        // Facts are spread across shards after balancing.
        let spread: Vec<usize> = cluster
            .router()
            .shards()
            .iter()
            .map(|s| s.db().get_collection("store_sales").map(|c| c.len()).unwrap_or(0))
            .collect();
        assert!(spread.iter().filter(|&&n| n > 0).count() >= 2, "{spread:?}");
    }

    #[test]
    fn q50_is_targeted_on_the_cluster_but_q7_broadcasts() {
        use doclite_docstore::Filter;
        let spec = ExperimentSpec {
            id: 1,
            sf: TEST_SF,
            model: DataModel::Normalized,
            deployment: Deployment::Sharded,
        };
        let env = setup_environment(&spec, &opts()).unwrap();
        let router = env.cluster().unwrap().router();
        // Q50's fact semi-join filter carries the shard key.
        let t = router.explain_targeting(
            "store_sales",
            &Filter::is_in("ss_ticket_number", [1i64, 2i64]),
        );
        assert!(t.is_targeted());
        // Q7's semi-join fields do not.
        let t = router.explain_targeting(
            "store_sales",
            &Filter::is_in("ss_cdemo_sk", [1i64, 2i64]),
        );
        assert!(!t.is_targeted());
    }

    #[test]
    fn denormalized_env_builds_dn_collections() {
        let spec = ExperimentSpec {
            id: 3,
            sf: TEST_SF,
            model: DataModel::Denormalized,
            deployment: Deployment::Standalone,
        };
        let env = setup_environment(&spec, &opts()).unwrap();
        assert!(env.store().collection_len("store_sales_dn") > 0);
        assert!(env.store().collection_len("inventory_dn") > 0);
        assert!(env.store().collection_len("store_returns_dn") > 0);
    }

    #[test]
    fn time_query_returns_requested_runs() {
        let spec = ExperimentSpec {
            id: 3,
            sf: TEST_SF,
            model: DataModel::Denormalized,
            deployment: Deployment::Standalone,
        };
        let env = setup_environment(&spec, &opts()).unwrap();
        let params = QueryParams::for_scale(TEST_SF);
        let t = time_query(&env, QueryId::Q7, &params, DataModel::Denormalized, 3).unwrap();
        assert_eq!(t.runs.len(), 3);
        assert!(t.best <= *t.runs.iter().max().unwrap());
    }
}
