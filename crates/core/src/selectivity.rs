//! Query selectivity (thesis Table 4.4): "the proportion of data
//! retrieved" — measured, as the thesis does, by the size of each
//! query's result set in megabytes.

use crate::experiment::{DataModel, Environment};
use crate::store::Store;
use doclite_bson::codec::encoded_size;
use doclite_docstore::Result;
use doclite_tpcds::{QueryId, QueryParams};

/// Selectivity of one query at one scale.
#[derive(Clone, Debug)]
pub struct Selectivity {
    pub query: QueryId,
    /// Result documents.
    pub docs: usize,
    /// Encoded result bytes.
    pub bytes: usize,
}

impl Selectivity {
    /// Result size in MB (the unit of Table 4.4).
    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Runs a query and measures its result set.
pub fn measure(
    env: &Environment,
    query: QueryId,
    params: &QueryParams,
    model: DataModel,
) -> Result<Selectivity> {
    let (docs, _) = crate::experiment::run_query_once(env, query, params, model)?;
    let bytes = docs.iter().map(encoded_size).sum();
    Ok(Selectivity { query, docs: docs.len(), bytes })
}

/// Fraction of the source dataset the result represents.
pub fn fraction_of(selectivity: &Selectivity, store: &dyn Store, source: &str) -> f64 {
    let total = store.collection_data_size(source);
    if total == 0 {
        0.0
    } else {
        selectivity.bytes as f64 / total as f64
    }
}

/// Plan quality of one predicate: the cost model's row estimate against
/// the measured result cardinality (the per-stage comparison ablation
/// 14 / `bench_planner` sweeps).
#[derive(Clone, Copy, Debug)]
pub struct PlanQuality {
    /// The statistics subsystem's row estimate.
    pub est_rows: u64,
    /// Rows the filter actually matched.
    pub actual_rows: u64,
}

impl PlanQuality {
    /// Multiplicative estimation error, ≥ 1.0 (1.0 = exact). Zero on
    /// one side only is maximal error; zero on both sides is exact.
    pub fn error_factor(&self) -> f64 {
        match (self.est_rows, self.actual_rows) {
            (0, 0) => 1.0,
            (0, _) | (_, 0) => f64::INFINITY,
            (e, a) => {
                let (e, a) = (e as f64, a as f64);
                (e / a).max(a / e)
            }
        }
    }
}

/// Measures how well the cost model estimates `filter`'s cardinality on
/// `coll` (statistics are rebuilt lazily if stale, exactly as planning
/// would).
pub fn plan_quality(
    coll: &doclite_docstore::Collection,
    filter: &doclite_docstore::Filter,
) -> PlanQuality {
    PlanQuality {
        est_rows: coll.estimate_rows(filter),
        actual_rows: coll.count(filter) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{setup_environment, Deployment, ExperimentSpec, SetupOptions};
    use doclite_sharding::NetworkModel;

    #[test]
    fn selectivity_is_small_and_scales_with_result() {
        let spec = ExperimentSpec {
            id: 3,
            sf: 0.002,
            model: DataModel::Denormalized,
            deployment: Deployment::Standalone,
        };
        let opts = SetupOptions { network: NetworkModel::free(), max_chunk_size: 64 * 1024, ..SetupOptions::default() };
        let env = setup_environment(&spec, &opts).unwrap();
        let params = QueryParams::for_scale(0.002);
        let s = measure(&env, QueryId::Q7, &params, DataModel::Denormalized).unwrap();
        assert_eq!(s.bytes == 0, s.docs == 0);
        // Results are a tiny fraction of the source (Table 4.4 reports
        // fractions of a megabyte against multi-GB datasets).
        let frac = fraction_of(&s, env.store(), "store_sales_dn");
        assert!(frac < 0.5, "fraction {frac}");
    }
}
