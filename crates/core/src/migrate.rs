//! The data-migration algorithm (thesis Fig 4.3): `.dat` files →
//! MongoDB collections.
//!
//! Reproduced step-for-step:
//!
//! 1. create a collection;
//! 2. build a `HashMap<position, column name>` for the headerless file
//!    (the thesis's Step 3 — `.dat` files carry no header row);
//! 3. for each line, split on `'|'`;
//! 4. for each field, look the column name up by position and append the
//!    key/value pair — omitting SQL NULLs (empty fields), matching the
//!    storage convention of Fig 4.2;
//! 5. insert the document.
//!
//! The thesis shows the algorithm is `O(m)` in the line count (Section
//! 4.1.2.2); [`MigrationReport`] exposes per-table timings so Table 4.3
//! can be regenerated.

use crate::store::Store;
use doclite_bson::{Document, Value};
use doclite_tpcds::schema::{table_def, ColumnType, TableId};
use doclite_tpcds::DatReader;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// Timing and volume outcome of migrating one table.
#[derive(Clone, Debug)]
pub struct MigrationReport {
    pub table: TableId,
    pub rows: u64,
    pub elapsed: Duration,
    /// Bytes stored (encoded document size) after migration — the
    /// "increase by a factor of nearly nine" effect of Section 4.1.2
    /// is visible by comparing this to the `.dat` file size.
    pub stored_bytes: usize,
}

/// Errors from migration: IO or engine.
#[derive(Debug)]
pub enum MigrateError {
    Io(io::Error),
    Engine(doclite_docstore::Error),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Io(e) => write!(f, "io error: {e}"),
            MigrateError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<io::Error> for MigrateError {
    fn from(e: io::Error) -> Self {
        MigrateError::Io(e)
    }
}

impl From<doclite_docstore::Error> for MigrateError {
    fn from(e: doclite_docstore::Error) -> Self {
        MigrateError::Engine(e)
    }
}

/// Builds the position → column-name map of the algorithm's Step 3.
pub fn header_map(table: TableId) -> HashMap<usize, &'static str> {
    table_def(table)
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| (i, c.name))
        .collect()
}

/// Parses one `.dat` field under its column's type. dsdgen renders
/// integers bare, decimals with a point, and chars/dates verbatim.
fn parse_field(raw: &str, ty: ColumnType) -> Value {
    match ty {
        ColumnType::Integer => raw
            .parse::<i64>()
            .map(Value::Int64)
            .unwrap_or_else(|_| Value::String(raw.to_owned())),
        ColumnType::Decimal => raw
            .parse::<f64>()
            .map(Value::Double)
            .unwrap_or_else(|_| Value::String(raw.to_owned())),
        ColumnType::Char | ColumnType::Date => Value::String(raw.to_owned()),
    }
}

/// Converts one split `.dat` line into a document (the algorithm's
/// Steps 5–10). NULL (empty) fields are omitted.
pub fn line_to_document(
    table: TableId,
    header: &HashMap<usize, &'static str>,
    fields: &[Option<String>],
) -> Document {
    let def = table_def(table);
    let mut doc = Document::with_capacity(fields.len());
    for (i, field) in fields.iter().enumerate() {
        let Some(raw) = field else { continue };
        let Some(name) = header.get(&i) else { continue };
        let ty = def.columns[i].ty;
        doc.set(*name, parse_field(raw, ty));
    }
    doc
}

/// Migrates one table's `.dat` file into a collection named after the
/// table (Fig 4.3, the whole algorithm).
pub fn migrate_table(
    store: &dyn Store,
    dir: &Path,
    table: TableId,
) -> Result<MigrationReport, MigrateError> {
    let start = Instant::now();
    let header = header_map(table);
    let mut rows = 0u64;
    // Batch inserts so engine locking isn't the measured bottleneck.
    let mut batch: Vec<Document> = Vec::with_capacity(1024);
    for line in DatReader::open(dir, table)? {
        let fields = line?;
        batch.push(line_to_document(table, &header, &fields));
        rows += 1;
        if batch.len() == 1024 {
            store.insert_many(table.name(), std::mem::take(&mut batch))?;
        }
    }
    if !batch.is_empty() {
        store.insert_many(table.name(), batch)?;
    }
    Ok(MigrationReport {
        table,
        rows,
        elapsed: start.elapsed(),
        stored_bytes: store.collection_data_size(table.name()),
    })
}

/// Migrates all 24 tables, returning per-table reports in Table 3.6
/// order.
pub fn migrate_all(store: &dyn Store, dir: &Path) -> Result<Vec<MigrationReport>, MigrateError> {
    TableId::ALL
        .iter()
        .map(|&t| migrate_table(store, dir, t))
        .collect()
}

/// Fast path used by query-focused experiments: loads a table straight
/// from the generator, skipping the `.dat` round-trip (identical
/// resulting collections — see the `dat_and_direct_loads_agree` test).
pub fn load_table_direct(
    store: &dyn Store,
    gen: &doclite_tpcds::Generator,
    table: TableId,
) -> Result<u64, MigrateError> {
    let mut batch: Vec<Document> = Vec::with_capacity(1024);
    let mut rows = 0u64;
    for doc in gen.documents(table) {
        batch.push(doc);
        rows += 1;
        if batch.len() == 1024 {
            store.insert_many(table.name(), std::mem::take(&mut batch))?;
        }
    }
    if !batch.is_empty() {
        store.insert_many(table.name(), batch)?;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_docstore::{Database, Filter};
    use doclite_tpcds::Generator;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("doclite-mig-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn header_map_positions_match_schema() {
        let h = header_map(TableId::CustomerAddress);
        assert_eq!(h[&0], "ca_address_sk");
        assert_eq!(h[&6], "ca_city");
        assert_eq!(h.len(), 13);
    }

    #[test]
    fn line_to_document_omits_nulls_and_types_fields() {
        let h = header_map(TableId::Inventory);
        let fields = vec![
            Some("2450815".to_owned()),
            Some("7".to_owned()),
            None,
            Some("250".to_owned()),
        ];
        let doc = line_to_document(TableId::Inventory, &h, &fields);
        assert_eq!(doc.get("inv_date_sk"), Some(&Value::Int64(2_450_815)));
        assert_eq!(doc.get("inv_item_sk"), Some(&Value::Int64(7)));
        assert!(doc.get("inv_warehouse_sk").is_none());
        assert_eq!(doc.len(), 3);
    }

    #[test]
    fn migrate_table_roundtrip() {
        let dir = tmpdir("table");
        let gen = Generator::new(0.001);
        doclite_tpcds::write_table(&dir, &gen, TableId::Store).unwrap();

        let db = Database::new("Dataset_test");
        let report = migrate_table(&db, &dir, TableId::Store).unwrap();
        assert_eq!(report.rows, gen.row_count(TableId::Store));
        assert!(report.stored_bytes > 0);
        let coll = db.get_collection("store").unwrap();
        assert_eq!(coll.len() as u64, report.rows);
        // Spot-check a document: s_store_sk 1 exists with typed fields.
        let doc = coll.find_one(&Filter::eq("s_store_sk", 1i64)).unwrap();
        assert!(matches!(doc.get("s_city"), Some(Value::String(_))));
        assert!(matches!(doc.get("s_gmt_offset"), Some(Value::Double(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dat_and_direct_loads_agree() {
        let dir = tmpdir("agree");
        let gen = Generator::new(0.001);
        doclite_tpcds::write_table(&dir, &gen, TableId::Warehouse).unwrap();

        let via_dat = Database::new("a");
        migrate_table(&via_dat, &dir, TableId::Warehouse).unwrap();
        let direct = Database::new("b");
        load_table_direct(&direct, &gen, TableId::Warehouse).unwrap();

        let mut a = via_dat.get_collection("warehouse").unwrap().all_docs();
        let mut b = direct.get_collection("warehouse").unwrap().all_docs();
        // Strip the engine-assigned _ids before comparing.
        for d in a.iter_mut().chain(b.iter_mut()) {
            d.remove("_id");
        }
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrate_all_loads_24_collections() {
        let dir = tmpdir("all");
        let gen = Generator::new(0.0005);
        doclite_tpcds::write_all(&dir, &gen).unwrap();
        let db = Database::new("Dataset_tiny");
        let reports = migrate_all(&db, &dir).unwrap();
        assert_eq!(reports.len(), 24);
        for r in &reports {
            assert_eq!(r.rows, gen.row_count(r.table), "{}", r.table);
        }
        assert_eq!(db.collection_names().len(), 24);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stored_size_exceeds_dat_size() {
        // The thesis's ~9x blow-up from repeating keys per document: at
        // minimum the stored form must exceed the raw text.
        let dir = tmpdir("blowup");
        let gen = Generator::new(0.001);
        doclite_tpcds::write_table(&dir, &gen, TableId::StoreSales).unwrap();
        let dat_size = std::fs::metadata(doclite_tpcds::dat_path(&dir, TableId::StoreSales))
            .unwrap()
            .len() as usize;
        let db = Database::new("d");
        let report = migrate_table(&db, &dir, TableId::StoreSales).unwrap();
        assert!(
            report.stored_bytes > 2 * dat_size,
            "stored {} vs dat {dat_size}",
            report.stored_bytes
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
