//! # doclite-core
//!
//! The thesis's contributions, reproduced: the data-migration algorithm
//! (Fig 4.3), the denormalized-collection creation and `EmbedDocuments`
//! algorithms (Figs 4.6/4.7), the normalized-model query-translation
//! algorithm (Fig 4.8), the four workload queries in both data models,
//! the Table 4.1 experiment matrix, and the measurement machinery behind
//! Tables 4.3–4.5 and Figures 4.9–4.11.

pub mod denormalize;
pub mod experiment;
pub mod fastdn;
pub mod migrate;
pub mod queries;
pub mod report;
pub mod selectivity;
pub mod store;
pub mod translate;

pub use denormalize::{
    create_denormalized, denormalized_name, embed_documents, embed_store_returns, EmbedSpec,
};
pub use experiment::{
    run_experiment, setup_environment, DataModel, Deployment, Environment, ExperimentSpec,
    QueryTiming, SetupOptions, WORKLOAD_TABLES,
};
pub use fastdn::{build_denormalized_fast, create_denormalized_fast};
pub use migrate::{migrate_all, migrate_table, load_table_direct, MigrateError, MigrationReport};
pub use queries::{denormalized_pipeline, output_collection, run_denormalized, run_normalized};
pub use report::{fmt_duration, TextTable};
pub use selectivity::{measure as measure_selectivity, Selectivity};
pub use store::Store;
pub use translate::{translate_denormalized, TranslateError, Translation};

/// Compile-time proof that an [`Environment`] (and the `Store` view the
/// workloads call through) can be shared across stress worker threads.
#[allow(dead_code)]
fn assert_shared_types_are_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Environment>();
    fn check_store(s: &Environment) -> &(dyn Store + Send + Sync) {
        match s {
            Environment::Standalone(db) => db,
            Environment::Sharded(c) => c.router(),
        }
    }
    let _ = check_store;
}
