//! Denormalization: the thesis's `Create Denormalized Collection`
//! (Fig 4.6) and `EmbedDocuments` (Fig 4.7) algorithms.
//!
//! "Joining a dimension collection to a fact collection is equivalent to
//! embedding the dimension collection documents in the fact collection"
//! (Section 4.1.3.1): each foreign-key field's scalar value is replaced
//! by the referenced dimension document (Fig 4.5), via one
//! `update(query, {$set …}, upsert:false, multi:true)` per dimension
//! document — exactly the algorithm's step 10.

use crate::store::Store;
use doclite_bson::{Document, Value};
use doclite_docstore::{Filter, IndexDef, OrdValue, Result, UpdateSpec};
use doclite_tpcds::schema::{foreign_keys_of, TableId};
use std::collections::HashMap;

/// One embedding instruction: replace `fact_field` in `fact` documents by
/// the `dim_collection` document whose `dim_pk` equals the field's value.
#[derive(Clone, Debug)]
pub struct EmbedSpec {
    pub fact_field: String,
    pub dim_collection: String,
    pub dim_pk: String,
}

/// Outcome of one `EmbedDocuments` run.
#[derive(Clone, Debug, Default)]
pub struct EmbedReport {
    /// Dimension documents hashed (the `n` of the `O(n + n log m)`
    /// complexity bound in Section 4.1.3.1.1).
    pub dim_docs: usize,
    /// Fact documents modified across all updates.
    pub facts_modified: usize,
}

/// `EmbedDocuments(F, D)` — Fig 4.7, steps 2–11.
pub fn embed_documents(store: &dyn Store, fact: &str, spec: &EmbedSpec) -> Result<EmbedReport> {
    let dim_docs = store.find(&spec.dim_collection, &Filter::True);
    embed_documents_from(store, fact, &spec.fact_field, &spec.dim_pk, dim_docs)
}

/// The embedding loop over an explicit dimension document set — reused by
/// the normalized-model translator (Fig 4.8 step iii), which embeds only
/// pre-filtered dimension documents.
pub fn embed_documents_from(
    store: &dyn Store,
    fact: &str,
    fact_field: &str,
    dim_pk: &str,
    dim_docs: Vec<Document>,
) -> Result<EmbedReport> {
    // Steps 2–8: hash pk → document (without its _id).
    let mut map: HashMap<OrdValue, Document> = HashMap::with_capacity(dim_docs.len());
    for mut doc in dim_docs {
        doc.remove("_id");
        let Some(pk) = doc.get(dim_pk).cloned() else { continue };
        map.insert(OrdValue(pk), doc);
    }
    let mut report = EmbedReport { dim_docs: map.len(), facts_modified: 0 };
    // Steps 9–11: one multi-update per dimension document.
    for (pk, doc) in map {
        let res = store.update(
            fact,
            &Filter::eq(fact_field, pk.into_value()),
            &UpdateSpec::set(fact_field, Value::Document(doc)),
            false,
            true,
        )?;
        report.facts_modified += res.modified;
    }
    Ok(report)
}

/// Conventional name for a denormalized fact collection.
pub fn denormalized_name(fact: TableId) -> String {
    format!("{}_dn", fact.name())
}

/// `Create Denormalized Collection` — Fig 4.6: copies the fact collection
/// and embeds every dimension its foreign keys reference (per the FK
/// catalog of thesis Figs 3.2–3.4). Indexes each FK field first so the
/// per-dimension updates hit the `O(log m)` index path the complexity
/// analysis assumes.
pub fn create_denormalized(store: &dyn Store, fact: TableId, out: &str) -> Result<EmbedReport> {
    store.drop_collection(out);
    let docs = store.find(fact.name(), &Filter::True);
    let mut copies = Vec::with_capacity(docs.len());
    for mut d in docs {
        d.remove("_id"); // fresh ids in the new collection
        copies.push(d);
    }
    store.insert_many(out, copies)?;

    let mut total = EmbedReport::default();
    for fk in foreign_keys_of(fact) {
        store.create_index(out, IndexDef::single(fk.column))?;
        // Snowflake expansion: the dimension's own foreign keys are
        // expanded in memory first (customer → customer_address etc.), so
        // the denormalized fact exposes paths like
        // `ss_customer_sk.c_current_addr_sk.ca_city` (Query 46's outer
        // join target).
        let dim_docs = expanded_dimension_docs(store, fk.ref_table);
        let report =
            embed_documents_from(store, out, fk.column, fk.ref_column, dim_docs)?;
        total.dim_docs += report.dim_docs;
        total.facts_modified += report.facts_modified;
    }
    Ok(total)
}

/// Fetches a dimension's documents with their own dimension references
/// expanded (one level — the snowflake edges of the FK catalog).
fn expanded_dimension_docs(store: &dyn Store, dim: TableId) -> Vec<Document> {
    let mut docs = store.find(dim.name(), &Filter::True);
    for fk in foreign_keys_of(dim) {
        let mut by_pk: HashMap<OrdValue, Document> = HashMap::new();
        for mut d in store.find(fk.ref_table.name(), &Filter::True) {
            d.remove("_id");
            if let Some(pk) = d.get(fk.ref_column).cloned() {
                by_pk.insert(OrdValue(pk), d);
            }
        }
        for doc in &mut docs {
            if let Some(v) = doc.get(fk.column).cloned() {
                if let Some(inner) = by_pk.get(&OrdValue(v)) {
                    doc.set(fk.column, Value::Document(inner.clone()));
                }
            }
        }
    }
    docs
}

/// The Query 50 extension: embeds each (already denormalized) return
/// document into its matching sale document under `ss_return`, joining on
/// ticket number and item — the fact-to-fact join of Fig 3.8, realized
/// the same way dimension joins are (one targeted multi-update per
/// return).
pub fn embed_store_returns(store: &dyn Store, sales_dn: &str, returns_dn: &str) -> Result<usize> {
    store.create_index(sales_dn, IndexDef::single("ss_ticket_number"))?;
    let mut embedded = 0;
    for mut ret in store.find(returns_dn, &Filter::True) {
        ret.remove("_id");
        let Some(ticket) = ret.get("sr_ticket_number").cloned() else { continue };
        // After denormalization sr_item_sk holds the embedded item
        // document; its primary key carries the raw join value.
        let Some(item) = ret.get_path("sr_item_sk.i_item_sk") else { continue };
        let filter = Filter::and([
            Filter::eq("ss_ticket_number", ticket),
            Filter::eq("ss_item_sk.i_item_sk", item),
        ]);
        let res = store.update(
            sales_dn,
            &filter,
            &UpdateSpec::set("ss_return", Value::Document(ret)),
            false,
            true,
        )?;
        embedded += res.modified;
    }
    Ok(embedded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migrate::load_table_direct;
    use doclite_bson::doc;
    use doclite_docstore::Database;
    use doclite_tpcds::Generator;

    #[test]
    fn embed_documents_replaces_fk_with_dimension_doc() {
        let db = Database::new("t");
        db.collection("facts")
            .insert_many([
                doc! {"fk" => 1i64, "v" => 10i64},
                doc! {"fk" => 2i64, "v" => 20i64},
                doc! {"fk" => 1i64, "v" => 30i64},
            ])
            .unwrap();
        db.collection("dims")
            .insert_many([
                doc! {"pk" => 1i64, "name" => "one"},
                doc! {"pk" => 2i64, "name" => "two"},
                doc! {"pk" => 3i64, "name" => "three"},
            ])
            .unwrap();
        let report = embed_documents(
            &db,
            "facts",
            &EmbedSpec {
                fact_field: "fk".into(),
                dim_collection: "dims".into(),
                dim_pk: "pk".into(),
            },
        )
        .unwrap();
        assert_eq!(report.dim_docs, 3);
        assert_eq!(report.facts_modified, 3);

        let facts = db.get_collection("facts").unwrap();
        let hits = facts.find(&Filter::eq("fk.name", "one"));
        assert_eq!(hits.len(), 2);
        // The embedded document keeps its pk but not its _id.
        let d = &hits[0];
        assert_eq!(d.get_path("fk.pk"), Some(Value::Int64(1)));
        assert_eq!(d.get_path("fk._id"), None);
    }

    #[test]
    fn embedding_skips_null_fks() {
        let db = Database::new("t");
        db.collection("facts")
            .insert_many([doc! {"v" => 1i64}, doc! {"fk" => Value::Null, "v" => 2i64}])
            .unwrap();
        db.collection("dims")
            .insert_one(doc! {"pk" => 1i64})
            .unwrap();
        let report = embed_documents(
            &db,
            "facts",
            &EmbedSpec {
                fact_field: "fk".into(),
                dim_collection: "dims".into(),
                dim_pk: "pk".into(),
            },
        )
        .unwrap();
        assert_eq!(report.facts_modified, 0);
    }

    fn loaded_db(sf: f64) -> Database {
        let db = Database::new("Dataset_test");
        let gen = Generator::new(sf);
        for t in [
            TableId::StoreSales,
            TableId::StoreReturns,
            TableId::DateDim,
            TableId::TimeDim,
            TableId::Item,
            TableId::Customer,
            TableId::CustomerAddress,
            TableId::CustomerDemographics,
            TableId::HouseholdDemographics,
            TableId::Store,
            TableId::Promotion,
            TableId::Reason,
        ] {
            load_table_direct(&db, &gen, t).unwrap();
        }
        db
    }

    #[test]
    fn create_denormalized_store_sales_embeds_all_dimensions() {
        let db = loaded_db(0.0008);
        let out = denormalized_name(TableId::StoreSales);
        create_denormalized(&db, TableId::StoreSales, &out).unwrap();
        let dn = db.get_collection(&out).unwrap();
        assert_eq!(dn.len(), db.get_collection("store_sales").unwrap().len());

        // Every non-null FK field now holds an embedded document.
        let sample = dn.find_with(&Filter::exists("ss_item_sk"), &Default::default());
        assert!(!sample.is_empty());
        for d in sample.iter().take(20) {
            assert!(
                matches!(d.get("ss_item_sk"), Some(Value::Document(_))),
                "{d}"
            );
            if let Some(v) = d.get("ss_sold_date_sk") {
                let Value::Document(date) = v else { panic!("not embedded: {v}") };
                assert!(date.contains_key("d_year"));
            }
        }
        // Denormalized form is much larger than the normalized fact.
        assert!(dn.data_size() > db.get_collection("store_sales").unwrap().data_size() * 3);
    }

    #[test]
    fn embed_store_returns_attaches_matching_return() {
        let db = loaded_db(0.0015);
        let ss_dn = denormalized_name(TableId::StoreSales);
        let sr_dn = denormalized_name(TableId::StoreReturns);
        create_denormalized(&db, TableId::StoreSales, &ss_dn).unwrap();
        create_denormalized(&db, TableId::StoreReturns, &sr_dn).unwrap();
        let embedded = embed_store_returns(&db, &ss_dn, &sr_dn).unwrap();
        assert!(embedded > 0, "no returns embedded");
        let with_return = db
            .get_collection(&ss_dn)
            .unwrap()
            .find(&Filter::exists("ss_return"));
        // Several returns may hit the same sale line (the embed then
        // overwrites), so distinct sale docs ≤ update modifications.
        assert!(!with_return.is_empty());
        assert!(with_return.len() <= embedded);
        // Ticket numbers agree between sale and embedded return.
        for d in with_return.iter().take(10) {
            assert_eq!(
                d.get("ss_ticket_number").cloned(),
                d.get_path("ss_return.sr_ticket_number"),
                "{d}"
            );
        }
    }
}
