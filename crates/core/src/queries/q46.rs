//! Query 46 (thesis Fig 3.7): weekend purchases in target cities by
//! households with a given dependent/vehicle profile, grouped per
//! ticket, keeping customers who bought in a city other than their
//! current one.

use super::{filter_dim_pks, output_collection, semi_join_into};
use crate::denormalize::embed_documents_from;
use crate::store::Store;
use doclite_bson::{Document, Value};
use doclite_docstore::{
    Accumulator, CmpOp, Expr, Filter, GroupId, Pipeline, ProjectField, Result,
};
use doclite_tpcds::queries::Q46Params;
use doclite_tpcds::QueryId;

fn city_values(p: &Q46Params) -> Vec<Value> {
    p.cities.iter().map(|c| Value::from(*c)).collect()
}

/// The final group / flatten / sort / `$out` tail shared by both
/// strategies, operating on documents that carry the flattened fields
/// `value` (current ≠ bought), names, cities, ticket, amt, profit.
fn tail(pipeline: Pipeline) -> Pipeline {
    pipeline
        .match_stage(Filter::eq("value", true))
        .group(
            GroupId::Expr(Expr::Doc(vec![
                ("ss_ticket_number".into(), Expr::field("ss_ticket_number")),
                ("ss_customer_sk".into(), Expr::field("ss_customer_sk")),
                ("ss_addr_sk".into(), Expr::field("ss_addr_sk")),
                ("ca_city".into(), Expr::field("ca_city")),
                ("bought_city".into(), Expr::field("bought_city")),
                ("c_last_name".into(), Expr::field("c_last_name")),
                ("c_first_name".into(), Expr::field("c_first_name")),
            ])),
            [
                ("amt", Accumulator::sum_field("amt")),
                ("profit", Accumulator::sum_field("profit")),
            ],
        )
        .project([
            ("_id", ProjectField::Exclude),
            ("c_last_name", ProjectField::Compute(Expr::field("_id.c_last_name"))),
            ("c_first_name", ProjectField::Compute(Expr::field("_id.c_first_name"))),
            ("ca_city", ProjectField::Compute(Expr::field("_id.ca_city"))),
            ("bought_city", ProjectField::Compute(Expr::field("_id.bought_city"))),
            (
                "ss_ticket_number",
                ProjectField::Compute(Expr::field("_id.ss_ticket_number")),
            ),
            ("amt", ProjectField::Include),
            ("profit", ProjectField::Include),
        ])
        .sort([
            ("c_last_name", 1),
            ("c_first_name", 1),
            ("ca_city", 1),
            ("bought_city", 1),
            ("ss_ticket_number", 1),
        ])
        .out(output_collection(QueryId::Q46))
}

/// The Appendix B pipeline against the denormalized `store_sales`
/// collection (customer documents carry their embedded current address).
pub fn denormalized_pipeline(p: &Q46Params) -> Pipeline {
    let head = Pipeline::new()
        .match_stage(Filter::and([
            Filter::In { path: "ss_store_sk.s_city".into(), values: city_values(p) },
            Filter::is_in("ss_sold_date_sk.d_dow", p.dows.to_vec()),
            Filter::is_in("ss_sold_date_sk.d_year", p.years.to_vec()),
            Filter::or([
                Filter::eq("ss_hdemo_sk.hd_dep_count", p.dep_count),
                Filter::eq("ss_hdemo_sk.hd_vehicle_count", p.vehicle_count),
            ]),
            Filter::exists("ss_addr_sk.ca_address_sk"),
            Filter::exists("ss_customer_sk.c_customer_sk"),
        ]))
        .project([
            (
                "value",
                ProjectField::Compute(Expr::cmp(
                    CmpOp::Ne,
                    Expr::field("ss_customer_sk.c_current_addr_sk.ca_city"),
                    Expr::field("ss_addr_sk.ca_city"),
                )),
            ),
            ("c_last_name", ProjectField::Compute(Expr::field("ss_customer_sk.c_last_name"))),
            (
                "c_first_name",
                ProjectField::Compute(Expr::field("ss_customer_sk.c_first_name")),
            ),
            ("bought_city", ProjectField::Compute(Expr::field("ss_addr_sk.ca_city"))),
            (
                "ca_city",
                ProjectField::Compute(Expr::field("ss_customer_sk.c_current_addr_sk.ca_city")),
            ),
            ("ss_ticket_number", ProjectField::Include),
            (
                "ss_customer_sk",
                ProjectField::Compute(Expr::field("ss_customer_sk.c_customer_sk")),
            ),
            ("ss_addr_sk", ProjectField::Compute(Expr::field("ss_addr_sk.ca_address_sk"))),
            ("amt", ProjectField::Compute(Expr::field("ss_coupon_amt"))),
            ("profit", ProjectField::Compute(Expr::field("ss_net_profit"))),
        ]);
    tail(head)
}

/// The Fig 4.8 algorithm against the normalized model. The derived table
/// `dn` is materialized as an intermediate collection; the outer joins to
/// `customer` and `customer_address current_addr` become an embedding
/// pass over it.
pub fn run_normalized(store: &dyn Store, p: &Q46Params) -> Result<Vec<Document>> {
    // Step i: filter the predicated dimensions of the inner query.
    let date_pks = filter_dim_pks(
        store,
        "date_dim",
        &Filter::and([
            Filter::is_in("d_dow", p.dows.to_vec()),
            Filter::is_in("d_year", p.years.to_vec()),
        ]),
        "d_date_sk",
    );
    let store_pks = filter_dim_pks(
        store,
        "store",
        &Filter::In { path: "s_city".into(), values: city_values(p) },
        "s_store_sk",
    );
    let hd_pks = filter_dim_pks(
        store,
        "household_demographics",
        &Filter::or([
            Filter::eq("hd_dep_count", p.dep_count),
            Filter::eq("hd_vehicle_count", p.vehicle_count),
        ]),
        "hd_demo_sk",
    );

    // Step ii: semi-join store_sales.
    let intermediate = "query46_intermediate";
    semi_join_into(
        store,
        "store_sales",
        &[
            ("ss_sold_date_sk", &date_pks),
            ("ss_store_sk", &store_pks),
            ("ss_hdemo_sk", &hd_pks),
        ],
        Filter::and([Filter::exists("ss_addr_sk"), Filter::exists("ss_customer_sk")]),
        intermediate,
    )?;

    // Step iii: embed the aggregation-relevant dimensions — the bought
    // address (ca_city groups the inner query) and the customer with the
    // customer's *current* address expanded (the outer query's
    // `current_addr` join).
    let addresses = store.find("customer_address", &Filter::True);
    embed_documents_from(store, intermediate, "ss_addr_sk", "ca_address_sk", addresses.clone())?;

    let mut customers = store.find("customer", &Filter::True);
    // Expand c_current_addr_sk in memory (customer ⋈ current_addr).
    let addr_by_pk: std::collections::HashMap<i64, &Document> = addresses
        .iter()
        .filter_map(|a| a.get("ca_address_sk").and_then(Value::as_i64).map(|k| (k, a)))
        .collect();
    for c in &mut customers {
        if let Some(k) = c.get("c_current_addr_sk").and_then(Value::as_i64) {
            if let Some(addr) = addr_by_pk.get(&k) {
                let mut a = (*addr).clone();
                a.remove("_id");
                c.set("c_current_addr_sk", Value::Document(a));
            }
        }
    }
    embed_documents_from(store, intermediate, "ss_customer_sk", "c_customer_sk", customers)?;

    // Step iv: flatten and aggregate (same tail as denormalized).
    let head = Pipeline::new().project([
        (
            "value",
            ProjectField::Compute(Expr::cmp(
                CmpOp::Ne,
                Expr::field("ss_customer_sk.c_current_addr_sk.ca_city"),
                Expr::field("ss_addr_sk.ca_city"),
            )),
        ),
        ("c_last_name", ProjectField::Compute(Expr::field("ss_customer_sk.c_last_name"))),
        ("c_first_name", ProjectField::Compute(Expr::field("ss_customer_sk.c_first_name"))),
        ("bought_city", ProjectField::Compute(Expr::field("ss_addr_sk.ca_city"))),
        (
            "ca_city",
            ProjectField::Compute(Expr::field("ss_customer_sk.c_current_addr_sk.ca_city")),
        ),
        ("ss_ticket_number", ProjectField::Include),
        (
            "ss_customer_sk",
            ProjectField::Compute(Expr::field("ss_customer_sk.c_customer_sk")),
        ),
        ("ss_addr_sk", ProjectField::Compute(Expr::field("ss_addr_sk.ca_address_sk"))),
        ("amt", ProjectField::Compute(Expr::field("ss_coupon_amt"))),
        ("profit", ProjectField::Compute(Expr::field("ss_net_profit"))),
    ]);
    store.aggregate(intermediate, &tail(head))
}
