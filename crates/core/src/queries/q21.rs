//! Query 21 (thesis Fig 3.6): per warehouse × item, the on-hand
//! inventory before and after a pivot date, keeping the pairs whose
//! after/before ratio lies in [2/3, 3/2].

use super::{filter_dim_pks, output_collection, semi_join_into};
use crate::denormalize::embed_documents_from;
use crate::store::Store;
use doclite_bson::Document;
use doclite_docstore::{
    Accumulator, CmpOp, Expr, Filter, GroupId, Pipeline, ProjectField, Result,
};
use doclite_tpcds::queries::Q21Params;
use doclite_tpcds::QueryId;

fn window(p: &Q21Params) -> (String, String, String) {
    let pivot = p.pivot_date.to_iso();
    let lo = p.pivot_date.plus_days(-p.window_days).to_iso();
    let hi = p.pivot_date.plus_days(p.window_days).to_iso();
    (pivot, lo, hi)
}

/// The before/after accumulators over the embedded date's `d_date`
/// (ISO date strings compare correctly under lexicographic order).
fn before_after(date_path: &str, qty_path: &str, pivot: &str) -> [(String, Accumulator); 2] {
    [
        (
            "inv_before".to_owned(),
            Accumulator::Sum(Expr::cond(
                Expr::cmp(CmpOp::Lt, Expr::field(date_path), Expr::lit(pivot)),
                Expr::field(qty_path),
                Expr::lit(0i64),
            )),
        ),
        (
            "inv_after".to_owned(),
            Accumulator::Sum(Expr::cond(
                Expr::cmp(CmpOp::Gte, Expr::field(date_path), Expr::lit(pivot)),
                Expr::field(qty_path),
                Expr::lit(0i64),
            )),
        ),
    ]
}

/// The shared tail of both strategies: ratio filter, final projection,
/// sort, `$out`.
fn tail(pipeline: Pipeline) -> Pipeline {
    pipeline
        .project([
            ("_id", ProjectField::Include),
            (
                "temp",
                ProjectField::Compute(Expr::divide(
                    Expr::field("inv_after"),
                    Expr::field("inv_before"),
                )),
            ),
            ("inv_before", ProjectField::Include),
            ("inv_after", ProjectField::Include),
        ])
        .match_stage(Filter::between("temp", 2.0 / 3.0, 3.0 / 2.0))
        .project([
            ("_id", ProjectField::Exclude),
            ("w_warehouse_name", ProjectField::Compute(Expr::field("_id.w_name"))),
            ("i_item_id", ProjectField::Compute(Expr::field("_id.i_id"))),
            ("inv_before", ProjectField::Include),
            ("inv_after", ProjectField::Include),
        ])
        .sort([("w_warehouse_name", 1), ("i_item_id", 1)])
        .out(output_collection(QueryId::Q21))
}

/// The Appendix B pipeline against the denormalized `inventory`
/// collection.
pub fn denormalized_pipeline(p: &Q21Params) -> Pipeline {
    let (pivot, lo, hi) = window(p);
    let head = Pipeline::new()
        .match_stage(Filter::and([
            Filter::between("inv_item_sk.i_current_price", p.price_lo, p.price_hi),
            Filter::exists("inv_warehouse_sk.w_warehouse_sk"),
            Filter::between("inv_date_sk.d_date", lo.as_str(), hi.as_str()),
        ]))
        .group(
            GroupId::Expr(Expr::Doc(vec![
                ("w_name".into(), Expr::field("inv_warehouse_sk.w_warehouse_name")),
                ("i_id".into(), Expr::field("inv_item_sk.i_item_id")),
            ])),
            before_after("inv_date_sk.d_date", "inv_quantity_on_hand", &pivot),
        );
    tail(head)
}

/// The Fig 4.8 algorithm against the normalized model.
pub fn run_normalized(store: &dyn Store, p: &Q21Params) -> Result<Vec<Document>> {
    let (pivot, lo, hi) = window(p);

    // Step i: filter item on price, date_dim on the ±30-day window.
    let item_filter = Filter::between("i_current_price", p.price_lo, p.price_hi);
    let item_pks = filter_dim_pks(store, "item", &item_filter, "i_item_sk");
    let date_filter = Filter::between("d_date", lo.as_str(), hi.as_str());
    let date_pks = filter_dim_pks(store, "date_dim", &date_filter, "d_date_sk");

    // Step ii: semi-join inventory.
    let intermediate = "query21_intermediate";
    semi_join_into(
        store,
        "inventory",
        &[("inv_item_sk", &item_pks), ("inv_date_sk", &date_pks)],
        Filter::exists("inv_warehouse_sk"),
        intermediate,
    )?;

    // Step iii: embed the aggregation-relevant dimensions — warehouse
    // (name), the *filtered* items (id), and the *filtered* dates (d_date
    // drives the before/after conditions).
    let warehouses = store.find("warehouse", &Filter::True);
    embed_documents_from(store, intermediate, "inv_warehouse_sk", "w_warehouse_sk", warehouses)?;
    let items = store.find("item", &item_filter);
    embed_documents_from(store, intermediate, "inv_item_sk", "i_item_sk", items)?;
    let dates = store.find("date_dim", &date_filter);
    embed_documents_from(store, intermediate, "inv_date_sk", "d_date_sk", dates)?;

    // Step iv: aggregate (same shape as the denormalized pipeline).
    let head = Pipeline::new().group(
        GroupId::Expr(Expr::Doc(vec![
            ("w_name".into(), Expr::field("inv_warehouse_sk.w_warehouse_name")),
            ("i_id".into(), Expr::field("inv_item_sk.i_item_id")),
        ])),
        before_after("inv_date_sk.d_date", "inv_quantity_on_hand", &pivot),
    );
    store.aggregate(intermediate, &tail(head))
}
