//! Query 50 (thesis Fig 3.8): per store, the count of returns bucketed
//! by days-to-return (≤30, 31–60, 61–90, 91–120, >120) for returns
//! booked in one month.
//!
//! This is the query whose predicates carry the fact collections' shard
//! key (ticket number), which is why it is the one query the thesis
//! found *faster* on the sharded deployment (Section 4.3 item iii).

use super::{output_collection, semi_join_into};
use crate::denormalize::embed_documents_from;
use crate::store::Store;
use doclite_bson::{Document, Value};
use doclite_docstore::{
    Accumulator, CmpOp, Expr, Filter, GroupId, Pipeline, ProjectField, Result, UpdateSpec,
};
use doclite_tpcds::queries::Q50Params;
use doclite_tpcds::QueryId;

const STORE_FIELDS: [&str; 10] = [
    "s_store_name",
    "s_company_id",
    "s_street_number",
    "s_street_name",
    "s_street_type",
    "s_suite_number",
    "s_city",
    "s_county",
    "s_state",
    "s_zip",
];

const BUCKETS: [(&str, Option<i64>, Option<i64>); 5] = [
    ("30 days", None, Some(30)),
    ("31-60 days", Some(30), Some(60)),
    ("61-90 days", Some(60), Some(90)),
    ("91-120 days", Some(90), Some(120)),
    (">120 days", Some(120), None),
];

/// `sum(case when lo < diff [and diff <= hi] then 1 else 0 end)`.
fn bucket_acc(diff: Expr, lo: Option<i64>, hi: Option<i64>) -> Accumulator {
    let mut conds = Vec::new();
    if let Some(lo) = lo {
        conds.push(Expr::cmp(CmpOp::Gt, diff.clone(), Expr::lit(lo)));
    }
    if let Some(hi) = hi {
        conds.push(Expr::cmp(CmpOp::Lte, diff.clone(), Expr::lit(hi)));
    }
    let cond = if conds.len() == 1 { conds.pop().expect("one") } else { Expr::And(conds) };
    Accumulator::Sum(Expr::cond(cond, Expr::lit(1i64), Expr::lit(0i64)))
}

/// The group / flatten / sort / `$out` tail shared by both strategies.
/// `store_path(f)` locates store attribute `f`; `diff` is the
/// days-to-return expression.
fn tail(pipeline: Pipeline, store_path: impl Fn(&str) -> String, diff: Expr) -> Pipeline {
    let group_id = Expr::Doc(
        STORE_FIELDS
            .iter()
            .map(|f| (f.to_string(), Expr::field(store_path(f))))
            .collect(),
    );
    let accs: Vec<(String, Accumulator)> = BUCKETS
        .iter()
        .map(|(name, lo, hi)| (name.to_string(), bucket_acc(diff.clone(), *lo, *hi)))
        .collect();

    let mut projection: Vec<(String, ProjectField)> =
        vec![("_id".to_owned(), ProjectField::Exclude)];
    for f in STORE_FIELDS {
        projection.push((
            f.to_owned(),
            ProjectField::Compute(Expr::field(format!("_id.{f}"))),
        ));
    }
    for (name, _, _) in BUCKETS {
        projection.push((name.to_owned(), ProjectField::Include));
    }

    // ORDER BY lists the first seven store columns (Fig 3.8).
    let sort: Vec<(String, i32)> = STORE_FIELDS[..7]
        .iter()
        .map(|f| (f.to_string(), 1))
        .collect();

    pipeline
        .group(GroupId::Expr(group_id), accs)
        .project(projection)
        .sort(sort)
        .out(output_collection(QueryId::Q50))
}

/// The pipeline against the denormalized `store_sales` collection, whose
/// documents carry their matching return under `ss_return` (the
/// fact-to-fact embedding of
/// [`crate::denormalize::embed_store_returns`]).
pub fn denormalized_pipeline(p: &Q50Params) -> Pipeline {
    let diff = Expr::subtract(
        Expr::field("ss_return.sr_returned_date_sk.d_date_sk"),
        Expr::field("ss_sold_date_sk.d_date_sk"),
    );
    let head = Pipeline::new()
        .match_stage(Filter::and([
            Filter::eq("ss_return.sr_returned_date_sk.d_year", p.year),
            Filter::eq("ss_return.sr_returned_date_sk.d_moy", p.moy),
            Filter::exists("ss_return.sr_customer_sk.c_customer_sk"),
            Filter::exists("ss_item_sk.i_item_sk"),
            Filter::exists("ss_sold_date_sk.d_date_sk"),
            Filter::exists("ss_store_sk.s_store_sk"),
        ]))
        // ss_customer_sk = sr_customer_sk (the join predicate that is not
        // structural): computed then matched, the thesis's treatment of
        // non-equi predicates in Appendix B.
        .project([
            (
                "cust_match",
                ProjectField::Compute(Expr::cmp(
                    CmpOp::Eq,
                    Expr::field("ss_customer_sk.c_customer_sk"),
                    Expr::field("ss_return.sr_customer_sk.c_customer_sk"),
                )),
            ),
            ("diff", ProjectField::Compute(diff)),
            ("ss_store_sk", ProjectField::Include),
        ])
        .match_stage(Filter::eq("cust_match", true));
    tail(head, |f| format!("ss_store_sk.{f}"), Expr::field("diff"))
}

/// The Fig 4.8 algorithm against the normalized model, extended with the
/// fact-to-fact join: returns for the target month are fetched, the
/// sales fact is semi-joined on their ticket numbers (the shard-key
/// predicate!), and each return document is embedded into its matching
/// sale in the intermediate collection.
pub fn run_normalized(store: &dyn Store, p: &Q50Params) -> Result<Vec<Document>> {
    // Step i: filter date_dim d2 (returned month).
    let d2_filter = Filter::and([Filter::eq("d_year", p.year), Filter::eq("d_moy", p.moy)]);
    let d2_pks = super::filter_dim_pks(store, "date_dim", &d2_filter, "d_date_sk");

    // Step ii-a: semi-join store_returns on the returned date.
    let returns = store.find(
        "store_returns",
        &Filter::and([
            Filter::In { path: "sr_returned_date_sk".into(), values: d2_pks },
            Filter::exists("sr_customer_sk"),
        ]),
    );

    // Step ii-b: semi-join store_sales on the returns' ticket numbers.
    let tickets: Vec<Value> = {
        let mut t: Vec<Value> = returns
            .iter()
            .filter_map(|r| r.get("sr_ticket_number").cloned())
            .collect();
        t.sort_by(|a, b| a.canonical_cmp(b));
        t.dedup_by(|a, b| a.canonical_eq(b));
        t
    };
    let intermediate = "query50_intermediate";
    semi_join_into(
        store,
        "store_sales",
        &[("ss_ticket_number", &tickets)],
        Filter::and([
            Filter::exists("ss_item_sk"),
            Filter::exists("ss_sold_date_sk"),
            Filter::exists("ss_store_sk"),
            Filter::exists("ss_customer_sk"),
        ]),
        intermediate,
    )?;

    // Step iii-a: embed each return into its matching sale line (ticket,
    // item, customer) — one targeted multi-update per return document.
    for mut ret in returns {
        ret.remove("_id");
        let (Some(ticket), Some(item), Some(customer)) = (
            ret.get("sr_ticket_number").cloned(),
            ret.get("sr_item_sk").cloned(),
            ret.get("sr_customer_sk").cloned(),
        ) else {
            continue;
        };
        store.update(
            intermediate,
            &Filter::and([
                Filter::eq("ss_ticket_number", ticket),
                Filter::eq("ss_item_sk", item),
                Filter::eq("ss_customer_sk", customer),
            ]),
            &UpdateSpec::set("sr", Value::Document(ret)),
            false,
            true,
        )?;
    }

    // Step iii-b: embed store (the grouping dimension).
    let stores = store.find("store", &Filter::True);
    embed_documents_from(store, intermediate, "ss_store_sk", "s_store_sk", stores)?;

    // Step iv: aggregate. Here both date keys are raw integers, so the
    // day difference is a direct subtraction of surrogate keys, exactly
    // as the SQL computes it.
    let diff = Expr::subtract(Expr::field("sr.sr_returned_date_sk"), Expr::field("ss_sold_date_sk"));
    let head = Pipeline::new().match_stage(Filter::exists("sr"));
    let pipeline = tail(head, |f| format!("ss_store_sk.{f}"), diff);
    store.aggregate(intermediate, &pipeline)
}
