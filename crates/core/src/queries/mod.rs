//! The four workload queries (thesis Table 3.5), each in both execution
//! strategies:
//!
//! * **denormalized** — an aggregation pipeline against the denormalized
//!   fact collection (the Appendix B scripts);
//! * **normalized** — the Fig 4.8 translation algorithm: filter each
//!   dimension by its WHERE predicates, semi-join the fact collection via
//!   `$in`, store an intermediate collection, embed the
//!   aggregation-relevant dimensions, then aggregate.

pub mod q21;
pub mod q46;
pub mod q50;
pub mod q7;

use crate::store::Store;
use doclite_bson::{Document, Value};
use doclite_docstore::{Filter, FindOptions, IndexDef, Result};
use doclite_tpcds::{QueryId, QueryParams};

/// Runs a query against the denormalized data model (experiments 3/6).
pub fn run_denormalized(
    store: &dyn Store,
    query: QueryId,
    params: &QueryParams,
) -> Result<Vec<Document>> {
    let (source, pipeline) = denormalized_pipeline(query, params);
    store.aggregate(&source, &pipeline)
}

/// The denormalized source collection and pipeline for a query.
pub fn denormalized_pipeline(
    query: QueryId,
    params: &QueryParams,
) -> (String, doclite_docstore::Pipeline) {
    match query {
        QueryId::Q7 => ("store_sales_dn".to_owned(), q7::denormalized_pipeline(&params.q7)),
        QueryId::Q21 => ("inventory_dn".to_owned(), q21::denormalized_pipeline(&params.q21)),
        QueryId::Q46 => ("store_sales_dn".to_owned(), q46::denormalized_pipeline(&params.q46)),
        QueryId::Q50 => ("store_sales_dn".to_owned(), q50::denormalized_pipeline(&params.q50)),
    }
}

/// Runs a query through the normalized-model translation algorithm
/// (experiments 1/2/4/5).
pub fn run_normalized(
    store: &dyn Store,
    query: QueryId,
    params: &QueryParams,
) -> Result<Vec<Document>> {
    match query {
        QueryId::Q7 => q7::run_normalized(store, &params.q7),
        QueryId::Q21 => q21::run_normalized(store, &params.q21),
        QueryId::Q46 => q46::run_normalized(store, &params.q46),
        QueryId::Q50 => q50::run_normalized(store, &params.q50),
    }
}

/// The `$out` collection name a query materializes into (thesis
/// Appendix B naming).
pub fn output_collection(query: QueryId) -> &'static str {
    match query {
        QueryId::Q7 => "query7_output",
        QueryId::Q21 => "query21_output",
        QueryId::Q46 => "query46_output",
        QueryId::Q50 => "query50_output",
    }
}

// ----- shared steps of the Fig 4.8 algorithm ---------------------------

/// Step i: filters one dimension by its WHERE predicates and returns the
/// primary keys of the surviving documents (the `ArrayList` of Fig 4.8
/// step 5).
pub fn filter_dim_pks(store: &dyn Store, dim: &str, filter: &Filter, pk: &str) -> Vec<Value> {
    store
        .find_with(dim, filter, &FindOptions::new().include(pk))
        .into_iter()
        // The projected documents are owned; move the key out rather
        // than cloning it.
        .filter_map(|mut d| d.remove(pk))
        .collect()
}

/// Step ii: semi-joins the fact collection against the filtered
/// dimension keys with `$in`, materializing matching fact documents into
/// the intermediate collection (Fig 4.8 step 7). Returns the row count.
pub fn semi_join_into(
    store: &dyn Store,
    fact: &str,
    constraints: &[(&str, &[Value])],
    extra: Filter,
    intermediate: &str,
) -> Result<usize> {
    let mut parts: Vec<Filter> = constraints
        .iter()
        .map(|(field, values)| Filter::In {
            path: (*field).to_owned(),
            values: values.to_vec(),
        })
        .collect();
    parts.push(extra);
    let filter = Filter::and(parts);

    store.drop_collection(intermediate);
    let mut docs = store.find(fact, &filter);
    for d in &mut docs {
        d.remove("_id"); // fresh ids in the intermediate collection
    }
    store.insert_many(intermediate, docs)
}

/// Indexes the intermediate collection's embed-target fields so the
/// `EmbedDocuments` updates take the `O(log m)` index path.
pub fn index_fields(store: &dyn Store, collection: &str, fields: &[&str]) -> Result<()> {
    for f in fields {
        store.create_index(collection, IndexDef::single(*f))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;
    use doclite_docstore::Database;

    #[test]
    fn filter_dim_pks_projects_keys() {
        let db = Database::new("t");
        db.collection("dim")
            .insert_many([
                doc! {"pk" => 1i64, "x" => "a"},
                doc! {"pk" => 2i64, "x" => "b"},
                doc! {"pk" => 3i64, "x" => "a"},
            ])
            .unwrap();
        let pks = filter_dim_pks(&db, "dim", &Filter::eq("x", "a"), "pk");
        assert_eq!(pks, vec![Value::Int64(1), Value::Int64(3)]);
    }

    #[test]
    fn semi_join_materializes_intersection() {
        let db = Database::new("t");
        db.collection("fact")
            .insert_many((0..20i64).map(|i| doc! {"a" => i % 4, "b" => i % 5, "v" => i}))
            .unwrap();
        let a_keys = [Value::Int64(1), Value::Int64(2)];
        let b_keys = [Value::Int64(0), Value::Int64(1)];
        let n = semi_join_into(
            &db,
            "fact",
            &[("a", &a_keys), ("b", &b_keys)],
            Filter::True,
            "inter",
        )
        .unwrap();
        let expected = (0..20i64)
            .filter(|i| [1, 2].contains(&(i % 4)) && [0, 1].contains(&(i % 5)))
            .count();
        assert_eq!(n, expected);
        assert_eq!(db.get_collection("inter").unwrap().len(), expected);
        // re-running replaces, not appends
        semi_join_into(&db, "fact", &[("a", &a_keys), ("b", &b_keys)], Filter::True, "inter")
            .unwrap();
        assert_eq!(db.get_collection("inter").unwrap().len(), expected);
    }

    #[test]
    fn output_collection_names_match_appendix_b() {
        assert_eq!(output_collection(QueryId::Q7), "query7_output");
        assert_eq!(output_collection(QueryId::Q50), "query50_output");
    }
}
