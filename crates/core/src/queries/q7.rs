//! Query 7 (thesis Fig 3.5): average quantity / list price / coupon /
//! sales price per item, for a demographic slice in one year, where the
//! promotion used no email or event channel.

use super::{filter_dim_pks, output_collection, semi_join_into};
use crate::denormalize::embed_documents_from;
use crate::store::Store;
use doclite_bson::Document;
use doclite_docstore::{
    Accumulator, Expr, Filter, GroupId, Pipeline, ProjectField, Result,
};
use doclite_tpcds::queries::Q7Params;
use doclite_tpcds::QueryId;

/// The Appendix B pipeline against the denormalized `store_sales`
/// collection.
pub fn denormalized_pipeline(p: &Q7Params) -> Pipeline {
    Pipeline::new()
        .match_stage(Filter::and([
            Filter::eq("ss_cdemo_sk.cd_gender", p.gender),
            Filter::eq("ss_cdemo_sk.cd_marital_status", p.marital_status),
            Filter::eq("ss_cdemo_sk.cd_education_status", p.education_status),
            Filter::or([
                Filter::eq("ss_promo_sk.p_channel_email", "N"),
                Filter::eq("ss_promo_sk.p_channel_event", "N"),
            ]),
            Filter::eq("ss_sold_date_sk.d_year", p.year),
            Filter::exists("ss_item_sk.i_item_sk"),
        ]))
        .group(
            GroupId::Expr(Expr::field("ss_item_sk.i_item_id")),
            [
                ("agg1", Accumulator::avg_field("ss_quantity")),
                ("agg2", Accumulator::avg_field("ss_list_price")),
                ("agg3", Accumulator::avg_field("ss_coupon_amt")),
                ("agg4", Accumulator::avg_field("ss_sales_price")),
            ],
        )
        .sort([("_id", 1)])
        .project([
            ("i_item_id", ProjectField::Compute(Expr::field("_id"))),
            ("agg1", ProjectField::Include),
            ("agg2", ProjectField::Include),
            ("agg3", ProjectField::Include),
            ("agg4", ProjectField::Include),
        ])
        .out(output_collection(QueryId::Q7))
}

fn cd_filter(p: &Q7Params) -> Filter {
    Filter::and([
        Filter::eq("cd_gender", p.gender),
        Filter::eq("cd_marital_status", p.marital_status),
        Filter::eq("cd_education_status", p.education_status),
    ])
}

fn promo_filter() -> Filter {
    Filter::or([
        Filter::eq("p_channel_email", "N"),
        Filter::eq("p_channel_event", "N"),
    ])
}

/// Step i of Fig 4.8, sequentially (the thesis: "the entire query was
/// performed on a single thread").
fn dim_pks(store: &dyn Store, p: &Q7Params) -> (Vec<doclite_bson::Value>, Vec<doclite_bson::Value>, Vec<doclite_bson::Value>) {
    let cd = filter_dim_pks(store, "customer_demographics", &cd_filter(p), "cd_demo_sk");
    let promo = filter_dim_pks(store, "promotion", &promo_filter(), "p_promo_sk");
    let date = filter_dim_pks(store, "date_dim", &Filter::eq("d_year", p.year), "d_date_sk");
    (cd, promo, date)
}

/// Step i with one thread per dimension collection — the thesis's
/// future-work suggestion (Section 5.2): "individual threads can be used
/// to query each collection in parallel". Collection-level locking makes
/// this safe, exactly as the thesis argues.
fn dim_pks_parallel(
    store: &dyn Store,
    p: &Q7Params,
) -> (Vec<doclite_bson::Value>, Vec<doclite_bson::Value>, Vec<doclite_bson::Value>) {
    std::thread::scope(|s| {
        let cd = s.spawn(|| {
            filter_dim_pks(store, "customer_demographics", &cd_filter(p), "cd_demo_sk")
        });
        let promo =
            s.spawn(|| filter_dim_pks(store, "promotion", &promo_filter(), "p_promo_sk"));
        let date = s.spawn(|| {
            filter_dim_pks(store, "date_dim", &Filter::eq("d_year", p.year), "d_date_sk")
        });
        (
            cd.join().expect("cd filter"),
            promo.join().expect("promo filter"),
            date.join().expect("date filter"),
        )
    })
}

/// The Fig 4.8 algorithm against the normalized model.
pub fn run_normalized(store: &dyn Store, p: &Q7Params) -> Result<Vec<Document>> {
    let (cd_pks, promo_pks, date_pks) = dim_pks(store, p);
    run_after_dim_filter(store, cd_pks, promo_pks, date_pks)
}

/// The Fig 4.8 algorithm with multithreaded dimension filtering (the
/// Section 5.2 extension). Same answers as [`run_normalized`].
pub fn run_normalized_parallel(store: &dyn Store, p: &Q7Params) -> Result<Vec<Document>> {
    let (cd_pks, promo_pks, date_pks) = dim_pks_parallel(store, p);
    run_after_dim_filter(store, cd_pks, promo_pks, date_pks)
}

fn run_after_dim_filter(
    store: &dyn Store,
    cd_pks: Vec<doclite_bson::Value>,
    promo_pks: Vec<doclite_bson::Value>,
    date_pks: Vec<doclite_bson::Value>,
) -> Result<Vec<Document>> {

    // Step ii: semi-join the fact collection.
    let intermediate = "query7_intermediate";
    semi_join_into(
        store,
        "store_sales",
        &[
            ("ss_cdemo_sk", &cd_pks),
            ("ss_promo_sk", &promo_pks),
            ("ss_sold_date_sk", &date_pks),
        ],
        Filter::exists("ss_item_sk"),
        intermediate,
    )?;

    // Step iii: embed only the dimension used by the aggregation (item,
    // for i_item_id). As in MongoDB, the intermediate collection has no
    // secondary indexes: each embedding update scans it — the cost the
    // thesis identifies as what makes the normalized model slow.
    let items = store.find("item", &Filter::True);
    embed_documents_from(store, intermediate, "ss_item_sk", "i_item_sk", items)?;

    // Step iv: aggregate.
    let pipeline = Pipeline::new()
        .group(
            GroupId::Expr(Expr::field("ss_item_sk.i_item_id")),
            [
                ("agg1", Accumulator::avg_field("ss_quantity")),
                ("agg2", Accumulator::avg_field("ss_list_price")),
                ("agg3", Accumulator::avg_field("ss_coupon_amt")),
                ("agg4", Accumulator::avg_field("ss_sales_price")),
            ],
        )
        .sort([("_id", 1)])
        .project([
            ("i_item_id", ProjectField::Compute(Expr::field("_id"))),
            ("agg1", ProjectField::Include),
            ("agg2", ProjectField::Include),
            ("agg3", ProjectField::Include),
            ("agg4", ProjectField::Include),
        ])
        .out(output_collection(QueryId::Q7));
    store.aggregate(intermediate, &pipeline)
}
