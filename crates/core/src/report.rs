//! Report formatting: renders durations and tables the way the thesis
//! prints them (`4m50.00s`, `0.62s`, `1h53m51.00s`).

use std::time::Duration;

/// Formats a duration in the thesis's `h/m/s` style.
pub fn fmt_duration(d: Duration) -> String {
    let total = d.as_secs_f64();
    if total >= 3600.0 {
        let h = (total / 3600.0).floor() as u64;
        let rem = total - h as f64 * 3600.0;
        let m = (rem / 60.0).floor() as u64;
        let s = rem - m as f64 * 60.0;
        format!("{h}h{m}m{s:05.2}s")
    } else if total >= 60.0 {
        let m = (total / 60.0).floor() as u64;
        let s = total - m as f64 * 60.0;
        format!("{m}m{s:05.2}s")
    } else {
        format!("{total:.2}s")
    }
}

/// A simple fixed-width text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header arity).
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with column alignment and a separator line.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..widths[i] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_styles_match_thesis() {
        assert_eq!(fmt_duration(Duration::from_millis(620)), "0.62s");
        assert_eq!(fmt_duration(Duration::from_secs_f64(26.84)), "26.84s");
        assert_eq!(fmt_duration(Duration::from_secs_f64(290.0)), "4m50.00s");
        assert_eq!(fmt_duration(Duration::from_secs_f64(6831.0)), "1h53m51.00s");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["Query", "Time"]);
        t.row(["Query 7", "15.71s"]);
        t.row(["Query 46", "3m18.00s"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Query"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("Query 46  3m18.00s"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }
}
