//! A deployment-agnostic data-access facade.
//!
//! The thesis's algorithms are "independent of the choice of the
//! deployment environment" (Section 4.1.3); this trait is that
//! independence made concrete — the migration, denormalization, and
//! query-translation code runs unchanged against a stand-alone
//! [`Database`] or a sharded cluster's [`Mongos`] router.

use doclite_bson::Document;
use doclite_docstore::{
    Database, Filter, FindOptions, IndexDef, Pipeline, Result, UpdateResult, UpdateSpec,
};
use doclite_sharding::Mongos;

/// Uniform operations over a deployment target.
pub trait Store: Sync {
    /// Inserts one document.
    fn insert_one(&self, collection: &str, doc: Document) -> Result<()>;

    /// Inserts many documents, returning the count.
    fn insert_many(&self, collection: &str, docs: Vec<Document>) -> Result<usize> {
        let mut n = 0;
        for d in docs {
            self.insert_one(collection, d)?;
            n += 1;
        }
        Ok(n)
    }

    /// `find` with options.
    fn find_with(&self, collection: &str, filter: &Filter, opts: &FindOptions) -> Vec<Document>;

    /// `find` with default options.
    fn find(&self, collection: &str, filter: &Filter) -> Vec<Document> {
        self.find_with(collection, filter, &FindOptions::default())
    }

    /// Counts matches.
    fn count(&self, collection: &str, filter: &Filter) -> usize;

    /// The thesis's four-parameter update (Fig 4.7 step 10).
    fn update(
        &self,
        collection: &str,
        filter: &Filter,
        spec: &UpdateSpec,
        upsert: bool,
        multi: bool,
    ) -> Result<UpdateResult>;

    /// Runs an aggregation pipeline (materializing `$out` if present).
    fn aggregate(&self, collection: &str, pipeline: &Pipeline) -> Result<Vec<Document>>;

    /// Creates an index.
    fn create_index(&self, collection: &str, def: IndexDef) -> Result<()>;

    /// Drops a collection; true if it existed.
    fn drop_collection(&self, collection: &str) -> bool;

    /// Documents in a collection.
    fn collection_len(&self, collection: &str) -> usize;

    /// Encoded bytes stored for a collection.
    fn collection_data_size(&self, collection: &str) -> usize;
}

impl Store for Database {
    fn insert_one(&self, collection: &str, doc: Document) -> Result<()> {
        self.collection(collection).insert_one(doc).map(|_| ())
    }

    fn insert_many(&self, collection: &str, docs: Vec<Document>) -> Result<usize> {
        self.collection(collection)
            .insert_many(docs)
            .map_err(|(_, e)| e)
    }

    fn find_with(&self, collection: &str, filter: &Filter, opts: &FindOptions) -> Vec<Document> {
        match self.get_collection(collection) {
            Ok(c) => c.find_with(filter, opts),
            Err(_) => Vec::new(),
        }
    }

    fn count(&self, collection: &str, filter: &Filter) -> usize {
        self.get_collection(collection)
            .map(|c| c.count(filter))
            .unwrap_or(0)
    }

    fn update(
        &self,
        collection: &str,
        filter: &Filter,
        spec: &UpdateSpec,
        upsert: bool,
        multi: bool,
    ) -> Result<UpdateResult> {
        self.collection(collection).update(filter, spec, upsert, multi)
    }

    fn aggregate(&self, collection: &str, pipeline: &Pipeline) -> Result<Vec<Document>> {
        Database::aggregate(self, collection, pipeline)
    }

    fn create_index(&self, collection: &str, def: IndexDef) -> Result<()> {
        self.collection(collection).create_index(def)
    }

    fn drop_collection(&self, collection: &str) -> bool {
        Database::drop_collection(self, collection)
    }

    fn collection_len(&self, collection: &str) -> usize {
        self.get_collection(collection).map(|c| c.len()).unwrap_or(0)
    }

    fn collection_data_size(&self, collection: &str) -> usize {
        self.get_collection(collection)
            .map(|c| c.data_size())
            .unwrap_or(0)
    }
}

impl Store for Mongos {
    fn insert_one(&self, collection: &str, doc: Document) -> Result<()> {
        Mongos::insert_one(self, collection, doc)
    }

    fn insert_many(&self, collection: &str, docs: Vec<Document>) -> Result<usize> {
        Mongos::insert_many(self, collection, docs)
    }

    fn find_with(&self, collection: &str, filter: &Filter, opts: &FindOptions) -> Vec<Document> {
        Mongos::find_with(self, collection, filter, opts)
    }

    fn count(&self, collection: &str, filter: &Filter) -> usize {
        Mongos::count(self, collection, filter)
    }

    fn update(
        &self,
        collection: &str,
        filter: &Filter,
        spec: &UpdateSpec,
        upsert: bool,
        multi: bool,
    ) -> Result<UpdateResult> {
        Mongos::update(self, collection, filter, spec, upsert, multi)
    }

    fn aggregate(&self, collection: &str, pipeline: &Pipeline) -> Result<Vec<Document>> {
        Mongos::aggregate(self, collection, pipeline)
    }

    fn create_index(&self, collection: &str, def: IndexDef) -> Result<()> {
        Mongos::create_index(self, collection, def)
    }

    fn drop_collection(&self, collection: &str) -> bool {
        let mut any = false;
        for shard in self.shards() {
            // Replica-aware: the collection must vanish from every
            // member, not just the primary copy.
            any |= shard.replica_set().drop_collection(collection);
        }
        any
    }

    fn collection_len(&self, collection: &str) -> usize {
        Mongos::collection_len(self, collection)
    }

    fn collection_data_size(&self, collection: &str) -> usize {
        Mongos::collection_data_size(self, collection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;
    use doclite_sharding::{ConfigServer, NetworkModel, Shard, ShardKey};
    use std::sync::Arc;

    fn exercise(store: &dyn Store) {
        store
            .insert_many(
                "c",
                (0..20i64).map(|i| doc! {"k" => i, "grp" => i % 2}).collect(),
            )
            .unwrap();
        assert_eq!(store.collection_len("c"), 20);
        assert_eq!(store.count("c", &Filter::eq("grp", 1i64)), 10);
        store
            .update(
                "c",
                &Filter::eq("grp", 0i64),
                &UpdateSpec::set("flag", true),
                false,
                true,
            )
            .unwrap();
        assert_eq!(store.find("c", &Filter::eq("flag", true)).len(), 10);
        store.create_index("c", IndexDef::single("k")).unwrap();
        assert!(store.collection_data_size("c") > 0);
        assert!(store.drop_collection("c"));
        assert_eq!(store.collection_len("c"), 0);
    }

    #[test]
    fn database_implements_store() {
        exercise(&Database::new("t"));
    }

    #[test]
    fn mongos_implements_store() {
        let shards: Vec<Arc<Shard>> = (0..2).map(|i| Arc::new(Shard::new(i, "t"))).collect();
        let cfg = Arc::new(ConfigServer::new());
        cfg.shard_collection_with_chunk_size("c", ShardKey::range(["k"]), 0, 1024);
        let router = Mongos::new(shards, cfg, NetworkModel::free());
        exercise(&router);
    }
}
