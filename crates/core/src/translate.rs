//! Generic SQL → aggregation-pipeline translation for the denormalized
//! data model.
//!
//! The thesis's translation algorithms are "optimized for queries that
//! follow the select-from-where template" (Section 4.1.3); this module
//! is that translator made reusable: given a parsed [`SelectStmt`] and
//! the TPC-DS FK catalog, it
//!
//! 1. identifies the fact table and maps every dimension column onto its
//!    embedded path (`cd_gender` → `ss_cdemo_sk.cd_gender`);
//! 2. drops join predicates (they are structural after denormalization)
//!    and translates the remaining WHERE into a `$match`;
//! 3. translates aggregates into `$group` accumulators, `GROUP BY` into
//!    the group `_id`, and `ORDER BY` into `$sort`;
//! 4. folds `CAST('…' AS date) ± n DAYS` arithmetic into ISO-date string
//!    literals (comparable lexicographically);
//! 5. handles one level of derived table by translating the inner query
//!    and appending the outer stages.
//!
//! Query 7 and Query 21 translate fully mechanically (see the
//! `translator_matches_hand_written_*` integration tests); the self-join
//! forms of Queries 46/50 use the hand translations in
//! [`crate::queries`], as the thesis's own implementation did.

use doclite_bson::Value;
use doclite_docstore::{
    Accumulator, CmpOp, Expr, Filter, GroupId, Pipeline, ProjectField,
};
use doclite_sql::{BinOp, FromItem, SelectItem, SelectStmt, SqlExpr};
use doclite_tpcds::dates::Date;
use doclite_tpcds::schema::{foreign_keys_of, table_def, TableId};
use std::collections::HashMap;
use std::fmt;

/// Translation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslateError(pub String);

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.0)
    }
}

impl std::error::Error for TranslateError {}

type TResult<T> = Result<T, TranslateError>;

fn err<T>(msg: impl Into<String>) -> TResult<T> {
    Err(TranslateError(msg.into()))
}

/// The outcome: the denormalized source collection to aggregate and the
/// pipeline to run.
#[derive(Clone, Debug)]
pub struct Translation {
    pub source: String,
    pub pipeline: Pipeline,
}

/// Translates a parsed select-from-where statement against the
/// denormalized model.
pub fn translate_denormalized(stmt: &SelectStmt) -> TResult<Translation> {
    // Derived-table form: translate the inner query, then append the
    // outer stages over its output fields.
    if let [FromItem::Subquery { query, .. }] = stmt.from.as_slice() {
        let inner = translate_denormalized(query)?;
        let mut pipeline = inner.pipeline;
        let passthrough = ColumnMap::passthrough();
        if let Some(w) = &stmt.where_clause {
            pipeline = apply_outer_where(pipeline, w)?;
        }
        if !stmt.order_by.is_empty() {
            pipeline = pipeline.sort(order_spec(stmt, &passthrough)?);
        }
        return Ok(Translation { source: inner.source, pipeline });
    }

    let fact = find_fact(stmt)?;
    let map = ColumnMap::for_fact(fact, stmt)?;

    let mut pipeline = Pipeline::new();

    // WHERE → $match (join predicates removed).
    if let Some(w) = &stmt.where_clause {
        let filter = where_to_filter(w, &map)?;
        pipeline = pipeline.match_stage(filter);
    }

    // GROUP BY + aggregates → $group.
    if stmt.has_aggregates() {
        let group_id = match stmt.group_by.len() {
            0 => GroupId::Null,
            1 => GroupId::Expr(sql_value_expr(&stmt.group_by[0], &map)?),
            _ => {
                let fields: Vec<(String, Expr)> = stmt
                    .group_by
                    .iter()
                    .map(|g| {
                        let name = group_key_name(g)?;
                        Ok((name, sql_value_expr(g, &map)?))
                    })
                    .collect::<TResult<_>>()?;
                GroupId::Expr(Expr::Doc(fields))
            }
        };
        let mut accs: Vec<(String, Accumulator)> = Vec::new();
        let mut projection: Vec<(String, ProjectField)> = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return err("SELECT * with aggregates is not in the template");
            };
            let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
            if expr.contains_aggregate() {
                accs.push((name.clone(), aggregate_to_accumulator(expr, &map)?));
                projection.push((name, ProjectField::Include));
            } else {
                // A bare column in an aggregate query must be a group key;
                // re-expose it from the group _id.
                let id_path = group_key_projection(expr, stmt)?;
                projection.push((name, ProjectField::Compute(Expr::field(id_path))));
            }
        }
        pipeline = pipeline.group(group_id, accs);
        if !stmt.order_by.is_empty() {
            pipeline = pipeline.sort(order_spec_grouped(stmt)?);
        }
        pipeline = pipeline.project(projection);
    } else {
        if !stmt.order_by.is_empty() {
            pipeline = pipeline.sort(order_spec(stmt, &map)?);
        }
    }

    Ok(Translation {
        source: crate::denormalize::denormalized_name(fact),
        pipeline,
    })
}

// ------------------------------------------------------------------

fn find_fact(stmt: &SelectStmt) -> TResult<TableId> {
    let mut fact = None;
    for f in &stmt.from {
        if let FromItem::Table { name, .. } = f {
            if let Some(t) = TableId::from_name(name) {
                if t.is_fact() {
                    if fact.is_some() {
                        return err("multiple fact tables need a hand translation");
                    }
                    fact = Some(t);
                }
            }
        }
    }
    fact.map_or_else(
        || err("no single fact table in FROM — self-join forms need a hand translation"),
        Ok,
    )
}

/// Maps column names to document paths in the denormalized fact.
struct ColumnMap {
    /// column → dotted path; empty map = identity (outer queries over a
    /// derived table address its output fields directly).
    paths: HashMap<String, String>,
    passthrough: bool,
}

impl ColumnMap {
    fn passthrough() -> Self {
        ColumnMap { paths: HashMap::new(), passthrough: true }
    }

    fn for_fact(fact: TableId, stmt: &SelectStmt) -> TResult<Self> {
        let mut paths = HashMap::new();
        for c in &table_def(fact).columns {
            paths.insert(c.name.to_owned(), c.name.to_owned());
        }
        for fk in foreign_keys_of(fact) {
            // A dimension used more than once (date_dim d1/d2) is
            // ambiguous for the mechanical mapping.
            let uses = stmt
                .from
                .iter()
                .filter(|f| matches!(f, FromItem::Table { name, .. } if name == fk.ref_table.name()))
                .count();
            if uses > 1 {
                return err(format!(
                    "dimension {} joined more than once needs a hand translation",
                    fk.ref_table.name()
                ));
            }
            for c in &table_def(fk.ref_table).columns {
                paths
                    .entry(c.name.to_owned())
                    .or_insert_with(|| format!("{}.{}", fk.column, c.name));
            }
        }
        Ok(ColumnMap { paths, passthrough: false })
    }

    fn path(&self, column: &str) -> TResult<String> {
        if self.passthrough {
            return Ok(column.to_owned());
        }
        self.paths
            .get(column)
            .cloned()
            .map_or_else(|| err(format!("unknown column {column}")), Ok)
    }
}

/// True if the predicate is `fk = pk` between the fact and a dimension —
/// structural after denormalization.
fn is_join_predicate(left: &SqlExpr, right: &SqlExpr) -> bool {
    let (SqlExpr::Column { name: l, .. }, SqlExpr::Column { name: r, .. }) = (left, right) else {
        return false;
    };
    let is_key = |c: &str| c.ends_with("_sk");
    is_key(l) && is_key(r)
}

fn where_to_filter(expr: &SqlExpr, map: &ColumnMap) -> TResult<Filter> {
    match expr {
        SqlExpr::Binary { op: BinOp::And, left, right } => Ok(Filter::and([
            where_to_filter(left, map)?,
            where_to_filter(right, map)?,
        ])),
        SqlExpr::Binary { op: BinOp::Or, left, right } => Ok(Filter::or([
            where_to_filter(left, map)?,
            where_to_filter(right, map)?,
        ])),
        SqlExpr::Not(inner) => Ok(Filter::not(where_to_filter(inner, map)?)),
        SqlExpr::Binary { op, left, right } if op.is_comparison() => {
            if is_join_predicate(left, right) {
                // Join predicate: embedding already enforces it; emit an
                // existence check on the embedded document instead, so
                // NULL foreign keys drop out exactly as an inner join
                // drops them.
                let SqlExpr::Column { name, .. } = left.as_ref() else { unreachable!() };
                let path = map.path(name)?;
                let head = path.split('.').next().expect("non-empty").to_owned();
                return Ok(Filter::exists(head));
            }
            let (path, value) = column_and_literal(left, right, map)?;
            let filter = match (op, value) {
                (BinOp::Eq, v) => Filter::eq(path, v),
                (BinOp::Neq, v) => Filter::ne(path, v),
                (BinOp::Lt, v) => Filter::lt(path, v),
                (BinOp::Lte, v) => Filter::lte(path, v),
                (BinOp::Gt, v) => Filter::gt(path, v),
                (BinOp::Gte, v) => Filter::gte(path, v),
                _ => unreachable!("comparison ops covered"),
            };
            Ok(filter)
        }
        SqlExpr::Between { expr, low, high } => {
            let path = column_path(expr, map)?;
            Ok(Filter::between(path, literal_value(low)?, literal_value(high)?))
        }
        SqlExpr::InList { expr, list } => {
            let path = column_path(expr, map)?;
            let values: Vec<Value> = list.iter().map(literal_value).collect::<TResult<_>>()?;
            Ok(Filter::In { path, values })
        }
        SqlExpr::IsNull { expr, negated } => {
            let path = column_path(expr, map)?;
            Ok(if *negated { Filter::exists(path) } else { Filter::eq(path, Value::Null) })
        }
        other => err(format!("unsupported WHERE form: {other:?}")),
    }
}

fn column_path(expr: &SqlExpr, map: &ColumnMap) -> TResult<String> {
    match expr {
        SqlExpr::Column { name, .. } => map.path(name),
        SqlExpr::Cast { expr, .. } => column_path(expr, map),
        other => err(format!("expected a column, got {other:?}")),
    }
}

fn column_and_literal(
    left: &SqlExpr,
    right: &SqlExpr,
    map: &ColumnMap,
) -> TResult<(String, Value)> {
    if let Ok(path) = column_path(left, map) {
        return Ok((path, literal_value(right)?));
    }
    let path = column_path(right, map)?;
    Ok((path, literal_value(left)?))
}

/// Folds literal expressions to values, evaluating date arithmetic:
/// `CAST('2002-05-29' AS date) - 30 days` → `"2002-04-29"`.
fn literal_value(expr: &SqlExpr) -> TResult<Value> {
    match expr {
        SqlExpr::Number(n) => {
            if n.fract() == 0.0 && n.abs() < i64::MAX as f64 {
                Ok(Value::Int64(*n as i64))
            } else {
                Ok(Value::Double(*n))
            }
        }
        SqlExpr::String(s) => Ok(Value::from(s.as_str())),
        SqlExpr::Null => Ok(Value::Null),
        SqlExpr::Cast { expr, ty } if ty == "date" => {
            let inner = literal_value(expr)?;
            match inner {
                Value::String(s) => Date::parse(&s)
                    .map(|d| Value::String(d.to_iso()))
                    .map_or_else(|| err(format!("bad date literal {s}")), Ok),
                other => Ok(other),
            }
        }
        SqlExpr::Cast { expr, .. } => literal_value(expr),
        SqlExpr::Binary { op, left, right } => {
            let l = literal_value(left)?;
            let r = literal_value(right)?;
            // Date ± interval.
            if let (Value::String(date), SqlExpr::IntervalDays(_)) = (&l, right.as_ref()) {
                let days = match literal_value(right)? {
                    Value::Int64(n) => n,
                    Value::Double(d) => d as i64,
                    other => return err(format!("bad interval {other}")),
                };
                let d = Date::parse(date)
                    .map_or_else(|| err(format!("bad date {date}")), Ok)?;
                let shifted = match op {
                    BinOp::Add => d.plus_days(days),
                    BinOp::Sub => d.plus_days(-days),
                    _ => return err("only ± on dates"),
                };
                return Ok(Value::String(shifted.to_iso()));
            }
            // Numeric constant folding (1998+1, 2.0/3.0).
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return err(format!("non-constant expression {expr:?}"));
            };
            let n = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => return err("non-arithmetic operator in literal"),
            };
            if n.fract() == 0.0 {
                Ok(Value::Int64(n as i64))
            } else {
                Ok(Value::Double(n))
            }
        }
        SqlExpr::IntervalDays(inner) => literal_value(inner),
        other => err(format!("non-literal expression {other:?}")),
    }
}

/// Translates a scalar SQL expression into an aggregation [`Expr`].
fn sql_value_expr(expr: &SqlExpr, map: &ColumnMap) -> TResult<Expr> {
    match expr {
        SqlExpr::Column { name, .. } => Ok(Expr::field(map.path(name)?)),
        SqlExpr::Number(_) | SqlExpr::String(_) | SqlExpr::Null => {
            Ok(Expr::Literal(literal_value(expr)?))
        }
        SqlExpr::Cast { expr, .. } => sql_value_expr(expr, map),
        SqlExpr::Case { whens, else_expr } => {
            // Chain WHENs as nested $cond.
            let mut out = match else_expr {
                Some(e) => sql_value_expr(e, map)?,
                None => Expr::Literal(Value::Null),
            };
            for (cond, value) in whens.iter().rev() {
                out = Expr::cond(
                    sql_bool_expr(cond, map)?,
                    sql_value_expr(value, map)?,
                    out,
                );
            }
            Ok(out)
        }
        SqlExpr::Binary { op, left, right } => {
            if literal_value(expr).is_ok() {
                return Ok(Expr::Literal(literal_value(expr)?));
            }
            let l = sql_value_expr(left, map)?;
            let r = sql_value_expr(right, map)?;
            Ok(match op {
                BinOp::Add => Expr::Add(vec![l, r]),
                BinOp::Sub => Expr::subtract(l, r),
                BinOp::Mul => Expr::Multiply(vec![l, r]),
                BinOp::Div => Expr::divide(l, r),
                _ => return sql_bool_expr(expr, map),
            })
        }
        other => err(format!("unsupported value expression {other:?}")),
    }
}

fn sql_bool_expr(expr: &SqlExpr, map: &ColumnMap) -> TResult<Expr> {
    match expr {
        SqlExpr::Binary { op: BinOp::And, left, right } => Ok(Expr::And(vec![
            sql_bool_expr(left, map)?,
            sql_bool_expr(right, map)?,
        ])),
        SqlExpr::Binary { op: BinOp::Or, left, right } => Ok(Expr::Or(vec![
            sql_bool_expr(left, map)?,
            sql_bool_expr(right, map)?,
        ])),
        SqlExpr::Not(e) => Ok(Expr::Not(Box::new(sql_bool_expr(e, map)?))),
        SqlExpr::Binary { op, left, right } if op.is_comparison() => {
            let cmp = match op {
                BinOp::Eq => CmpOp::Eq,
                BinOp::Neq => CmpOp::Ne,
                BinOp::Lt => CmpOp::Lt,
                BinOp::Lte => CmpOp::Lte,
                BinOp::Gt => CmpOp::Gt,
                BinOp::Gte => CmpOp::Gte,
                _ => unreachable!(),
            };
            Ok(Expr::cmp(cmp, sql_value_expr(left, map)?, sql_value_expr(right, map)?))
        }
        other => err(format!("unsupported boolean expression {other:?}")),
    }
}

fn aggregate_to_accumulator(expr: &SqlExpr, map: &ColumnMap) -> TResult<Accumulator> {
    let SqlExpr::Func { name, args } = expr else {
        return err(format!("aggregate expressions must be bare calls, got {expr:?}"));
    };
    let arg = args
        .first()
        .map_or_else(|| err("aggregate needs an argument"), Ok)?;
    let inner = sql_value_expr(arg, map)?;
    Ok(match name.as_str() {
        "avg" => Accumulator::Avg(inner),
        "sum" => Accumulator::Sum(inner),
        "min" => Accumulator::Min(inner),
        "max" => Accumulator::Max(inner),
        "count" => Accumulator::Sum(Expr::lit(1i64)),
        other => return err(format!("unknown aggregate {other}")),
    })
}

fn default_name(expr: &SqlExpr, i: usize) -> String {
    match expr {
        SqlExpr::Column { name, .. } => name.clone(),
        _ => format!("expr{i}"),
    }
}

fn group_key_name(g: &SqlExpr) -> TResult<String> {
    match g {
        SqlExpr::Column { name, .. } => Ok(name.clone()),
        other => err(format!("GROUP BY expressions must be columns, got {other:?}")),
    }
}

/// A non-aggregate select item in an aggregate query is re-exposed from
/// the group `_id`.
fn group_key_projection(expr: &SqlExpr, stmt: &SelectStmt) -> TResult<String> {
    let SqlExpr::Column { name, .. } = expr else {
        return err(format!("non-aggregate select item must be a group key: {expr:?}"));
    };
    let in_group = stmt
        .group_by
        .iter()
        .any(|g| matches!(g, SqlExpr::Column { name: gname, .. } if gname == name));
    if !in_group {
        return err(format!("{name} is neither aggregated nor grouped"));
    }
    if stmt.group_by.len() == 1 {
        Ok("_id".to_owned())
    } else {
        Ok(format!("_id.{name}"))
    }
}

fn order_spec(stmt: &SelectStmt, map: &ColumnMap) -> TResult<Vec<(String, i32)>> {
    stmt.order_by
        .iter()
        .map(|o| {
            let path = column_path(&o.expr, map)?;
            Ok((path, if o.ascending { 1 } else { -1 }))
        })
        .collect()
}

/// ORDER BY after a `$group`: keys order by their `_id` component,
/// aggregate aliases by their output field.
fn order_spec_grouped(stmt: &SelectStmt) -> TResult<Vec<(String, i32)>> {
    stmt.order_by
        .iter()
        .map(|o| {
            let SqlExpr::Column { name, .. } = &o.expr else {
                return err("ORDER BY expressions must be columns");
            };
            let dir = if o.ascending { 1 } else { -1 };
            let is_alias = stmt.items.iter().any(|i| {
                matches!(i, SelectItem::Expr { alias: Some(a), .. } if a == name)
            });
            if is_alias {
                return Ok((name.clone(), dir));
            }
            if stmt.group_by.len() == 1 {
                Ok(("_id".to_owned(), dir))
            } else {
                Ok((format!("_id.{name}"), dir))
            }
        })
        .collect()
}

/// Outer WHERE over a derived table: translated against the inner
/// query's output fields (after its `$project`, aliases are field names).
fn apply_outer_where(pipeline: Pipeline, w: &SqlExpr) -> TResult<Pipeline> {
    let map = ColumnMap::passthrough();
    // The outer WHERE of Query 21 compares a computed CASE ratio; when it
    // is not a plain filter, splice the computation into the inner
    // query's final `$project` (its expressions evaluate against the
    // pre-projection document, where the aggregate aliases live), then
    // range-match and strip the bookkeeping field — the same
    // compute-then-match treatment Appendix B gives the ratio.
    match where_to_filter(w, &map) {
        Ok(filter) => Ok(pipeline.match_stage(filter)),
        Err(_) => {
            let (value_expr, lo, hi) = extract_between_case(w)?;
            let mut stages: Vec<doclite_docstore::Stage> = pipeline.stages().to_vec();
            match stages.last_mut() {
                Some(doclite_docstore::Stage::Project(fields)) => {
                    fields.push(("_keep".to_owned(), ProjectField::Compute(value_expr)));
                }
                _ => {
                    stages.push(doclite_docstore::Stage::Project(vec![(
                        "_keep".to_owned(),
                        ProjectField::Compute(value_expr),
                    )]));
                }
            }
            let mut out = Pipeline::new();
            for st in stages {
                out = out.stage(st);
            }
            Ok(out
                .match_stage(Filter::between("_keep", lo, hi))
                .project([("_keep", ProjectField::Exclude)]))
        }
    }
}

/// Matches the `(CASE …) BETWEEN lo AND hi` outer predicate shape.
fn extract_between_case(w: &SqlExpr) -> TResult<(Expr, Value, Value)> {
    let SqlExpr::Between { expr, low, high } = w else {
        return err(format!("unsupported outer WHERE: {w:?}"));
    };
    let map = ColumnMap::passthrough();
    Ok((
        sql_value_expr(expr, &map)?,
        literal_value(low)?,
        literal_value(high)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_sql::parse;

    #[test]
    fn literal_folding_handles_dates_and_arithmetic() {
        let stmt = parse(
            "select * from store_sales where ss_sold_date_sk = 1 \
             and ss_quantity < 1998 + 2 and ss_list_price > 2.0 / 4.0",
        )
        .unwrap();
        let t = translate_denormalized(&stmt).unwrap();
        let doclite_docstore::Stage::Match(f) = &t.pipeline.stages()[0] else {
            panic!("expected $match")
        };
        let paths = f.referenced_paths();
        assert!(paths.contains(&"ss_quantity"));
        // 1998+2 folded to 2000
        let c = doclite_docstore::query::planner::conjunctive_constraints(f);
        assert_eq!(
            c["ss_quantity"].max.as_ref().map(|(v, _)| v.clone()),
            Some(Value::Int64(2000))
        );
        assert_eq!(
            c["ss_list_price"].min.as_ref().map(|(v, _)| v.clone()),
            Some(Value::Double(0.5))
        );
    }

    #[test]
    fn date_interval_arithmetic_folds_to_iso_strings() {
        let stmt = parse(
            "select * from inventory, date_dim where inv_date_sk = d_date_sk and \
             d_date between (cast('2002-05-29' as date) - 30 days) \
                        and (cast('2002-05-29' as date) + 30 days)",
        )
        .unwrap();
        let t = translate_denormalized(&stmt).unwrap();
        let doclite_docstore::Stage::Match(f) = &t.pipeline.stages()[0] else {
            panic!("expected $match")
        };
        let c = doclite_docstore::query::planner::conjunctive_constraints(f);
        let pc = &c["inv_date_sk.d_date"];
        assert_eq!(pc.min.as_ref().map(|(v, _)| v.clone()), Some(Value::from("2002-04-29")));
        assert_eq!(pc.max.as_ref().map(|(v, _)| v.clone()), Some(Value::from("2002-06-28")));
    }

    #[test]
    fn dimension_columns_map_to_embedded_paths() {
        let stmt = parse(
            "select avg(ss_quantity) a1 from store_sales, item, date_dim \
             where ss_item_sk = i_item_sk and ss_sold_date_sk = d_date_sk \
             and i_current_price > 5 and d_year = 2001",
        )
        .unwrap();
        let t = translate_denormalized(&stmt).unwrap();
        assert_eq!(t.source, "store_sales_dn");
        let doclite_docstore::Stage::Match(f) = &t.pipeline.stages()[0] else {
            panic!("expected $match")
        };
        let paths = f.referenced_paths();
        assert!(paths.contains(&"ss_item_sk.i_current_price"), "{paths:?}");
        assert!(paths.contains(&"ss_sold_date_sk.d_year"), "{paths:?}");
    }

    #[test]
    fn join_predicates_become_existence_checks() {
        let stmt = parse(
            "select avg(ss_quantity) a1 from store_sales, item where ss_item_sk = i_item_sk",
        )
        .unwrap();
        let t = translate_denormalized(&stmt).unwrap();
        let doclite_docstore::Stage::Match(f) = &t.pipeline.stages()[0] else {
            panic!("expected $match")
        };
        assert_eq!(*f, Filter::exists("ss_item_sk"));
    }

    #[test]
    fn non_fact_queries_are_rejected() {
        let stmt = parse("select * from date_dim where d_year = 2001").unwrap();
        let err = translate_denormalized(&stmt).unwrap_err();
        assert!(err.0.contains("hand translation"), "{err}");
    }

    #[test]
    fn duplicate_dimension_joins_are_rejected() {
        let stmt = parse(
            "select avg(ss_quantity) a from store_sales, date_dim d1, date_dim d2 \
             where ss_sold_date_sk = d1.d_date_sk",
        )
        .unwrap();
        let err = translate_denormalized(&stmt).unwrap_err();
        assert!(err.0.contains("joined more than once"), "{err}");
    }

    #[test]
    fn count_star_becomes_sum_one() {
        let stmt =
            parse("select count(*) n from store_sales group by ss_store_sk").unwrap();
        let t = translate_denormalized(&stmt).unwrap();
        let group = t
            .pipeline
            .stages()
            .iter()
            .find_map(|s| match s {
                doclite_docstore::Stage::Group { fields, .. } => Some(fields),
                _ => None,
            })
            .expect("group stage");
        assert!(matches!(
            &group[0].1,
            Accumulator::Sum(Expr::Literal(Value::Int64(1)))
        ));
    }

    #[test]
    fn ungrouped_bare_column_is_rejected() {
        let stmt = parse(
            "select ss_store_sk, avg(ss_quantity) a from store_sales group by ss_item_sk",
        )
        .unwrap();
        assert!(translate_denormalized(&stmt).is_err());
    }
}
