//! Fast denormalization: a single-pass hash-join assembly of the
//! denormalized fact collections.
//!
//! [`crate::denormalize::create_denormalized`] reproduces the thesis's
//! `EmbedDocuments` algorithm faithfully — one multi-update per
//! dimension document — which is exactly as expensive as the thesis says
//! it is. Setup code that only needs the *result* (the experiment
//! harness rebuilds denormalized environments dozens of times) uses this
//! module instead: same output collections (asserted by the
//! `fast_path_matches_algorithmic_path` test), built in one pass per
//! fact.

use crate::denormalize::denormalized_name;
use crate::store::Store;
use doclite_bson::{Document, Value};
use doclite_docstore::{Filter, IndexDef, OrdValue, Result};
use doclite_tpcds::schema::{foreign_keys_of, TableId};
use std::collections::HashMap;

/// A dimension lookup table: pk → document (without `_id`), with the
/// dimension's own FK fields expanded one level (snowflake).
fn dimension_map(store: &dyn Store, dim: TableId, pk: &str) -> HashMap<OrdValue, Document> {
    let mut docs = store.find(dim.name(), &Filter::True);
    for fk in foreign_keys_of(dim) {
        let inner = dimension_map_flat(store, fk.ref_table, fk.ref_column);
        for d in &mut docs {
            if let Some(v) = d.get(fk.column).cloned() {
                if let Some(emb) = inner.get(&OrdValue(v)) {
                    d.set(fk.column, Value::Document(emb.clone()));
                }
            }
        }
    }
    docs.into_iter()
        .filter_map(|mut d| {
            d.remove("_id");
            d.get(pk).cloned().map(|k| (OrdValue(k), d))
        })
        .collect()
}

fn dimension_map_flat(store: &dyn Store, dim: TableId, pk: &str) -> HashMap<OrdValue, Document> {
    store
        .find(dim.name(), &Filter::True)
        .into_iter()
        .filter_map(|mut d| {
            d.remove("_id");
            d.get(pk).cloned().map(|k| (OrdValue(k), d))
        })
        .collect()
}

/// Builds one denormalized fact collection in a single pass.
pub fn create_denormalized_fast(store: &dyn Store, fact: TableId, out: &str) -> Result<usize> {
    store.drop_collection(out);
    let joins: Vec<(&'static str, HashMap<OrdValue, Document>)> = foreign_keys_of(fact)
        .into_iter()
        .map(|fk| (fk.column, dimension_map(store, fk.ref_table, fk.ref_column)))
        .collect();

    let mut docs = store.find(fact.name(), &Filter::True);
    for d in &mut docs {
        d.remove("_id");
        for (field, map) in &joins {
            if let Some(v) = d.get(field).cloned() {
                if let Some(emb) = map.get(&OrdValue(v)) {
                    d.set(*field, Value::Document(emb.clone()));
                }
            }
        }
    }
    store.insert_many(out, docs)
}

/// Builds the full denormalized workload — the three fact collections
/// with `store_sales_dn` carrying its embedded returns — plus the
/// query-path indexes, in one pass each. Result-identical to
/// [`crate::experiment::build_denormalized`]'s algorithmic construction.
pub fn build_denormalized_fast(store: &dyn Store) -> Result<()> {
    let ss_dn = denormalized_name(TableId::StoreSales);
    let sr_dn = denormalized_name(TableId::StoreReturns);
    let inv_dn = denormalized_name(TableId::Inventory);

    create_denormalized_fast(store, TableId::StoreReturns, &sr_dn)?;
    create_denormalized_fast(store, TableId::Inventory, &inv_dn)?;

    // store_sales_dn with the matching return attached during assembly.
    // Key returns by (ticket, item pk) — later returns overwrite earlier
    // ones, matching the algorithmic path's update order.
    let mut returns_by_key: HashMap<(OrdValue, OrdValue), Document> = HashMap::new();
    for mut r in store.find(&sr_dn, &Filter::True) {
        r.remove("_id");
        let (Some(t), Some(i)) = (
            r.get("sr_ticket_number").cloned(),
            r.get_path("sr_item_sk.i_item_sk"),
        ) else {
            continue;
        };
        returns_by_key.insert((OrdValue(t), OrdValue(i)), r);
    }

    store.drop_collection(&ss_dn);
    let joins: Vec<(&'static str, HashMap<OrdValue, Document>)> =
        foreign_keys_of(TableId::StoreSales)
            .into_iter()
            .map(|fk| (fk.column, dimension_map(store, fk.ref_table, fk.ref_column)))
            .collect();
    let mut docs = store.find("store_sales", &Filter::True);
    for d in &mut docs {
        d.remove("_id");
        for (field, map) in &joins {
            if let Some(v) = d.get(field).cloned() {
                if let Some(emb) = map.get(&OrdValue(v)) {
                    d.set(*field, Value::Document(emb.clone()));
                }
            }
        }
        let (Some(t), Some(i)) = (
            d.get("ss_ticket_number").cloned(),
            d.get_path("ss_item_sk.i_item_sk"),
        ) else {
            continue;
        };
        if let Some(r) = returns_by_key.get(&(OrdValue(t), OrdValue(i))) {
            d.set("ss_return", Value::Document(r.clone()));
        }
    }
    store.insert_many(&ss_dn, docs)?;

    // The same query-path indexes the algorithmic builder creates.
    store.create_index(&ss_dn, IndexDef::single("ss_cdemo_sk.cd_education_status"))?;
    store.create_index(&ss_dn, IndexDef::single("ss_sold_date_sk.d_year"))?;
    store.create_index(&ss_dn, IndexDef::single("ss_return.sr_returned_date_sk.d_year"))?;
    store.create_index(&inv_dn, IndexDef::single("inv_item_sk.i_current_price"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::build_denormalized;
    use crate::migrate::load_table_direct;
    use doclite_docstore::Database;
    use doclite_tpcds::Generator;

    fn loaded_db(name: &str, sf: f64) -> Database {
        let db = Database::new(name);
        let gen = Generator::new(sf);
        let mut tables = vec![TableId::Reason, TableId::TimeDim];
        tables.extend(crate::experiment::WORKLOAD_TABLES);
        for t in tables {
            load_table_direct(&db, &gen, t).unwrap();
        }
        db
    }

    #[test]
    fn fast_path_matches_algorithmic_path() {
        let sf = 0.0015;
        let slow_db = loaded_db("slow", sf);
        build_denormalized(&slow_db).unwrap();
        let fast_db = loaded_db("fast", sf);
        build_denormalized_fast(&fast_db).unwrap();

        for coll in ["store_sales_dn", "store_returns_dn", "inventory_dn"] {
            let mut a = slow_db.get_collection(coll).unwrap().all_docs();
            let mut b = fast_db.get_collection(coll).unwrap().all_docs();
            for d in a.iter_mut().chain(b.iter_mut()) {
                d.remove("_id");
            }
            let key = doclite_bson::json::to_json;
            a.sort_by_key(&key);
            b.sort_by_key(&key);
            assert_eq!(a.len(), b.len(), "{coll}: row counts");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x, y, "{coll}: documents differ");
            }
            // Same index sets too.
            let ia: Vec<_> = slow_db.get_collection(coll).unwrap().index_defs();
            let ib: Vec<_> = fast_db.get_collection(coll).unwrap().index_defs();
            let names = |v: &[doclite_docstore::IndexDef]| {
                let mut n: Vec<String> = v.iter().map(|d| d.name.clone()).collect();
                n.sort();
                n
            };
            // The algorithmic path additionally carries the FK indexes it
            // used while embedding; every *query-path* index must exist in
            // both.
            for name in names(&ib) {
                assert!(names(&ia).contains(&name), "{coll}: fast path index {name} missing in slow path");
            }
        }
    }
}
