//! The reproduction's central correctness property: every experimental
//! setup of thesis Table 4.1 — normalized stand-alone, normalized
//! sharded, denormalized stand-alone — computes the *same answers* for
//! all four workload queries. (The thesis compares their runtimes; that
//! comparison is only meaningful because the results agree.)

mod common;

use common::assert_results_equivalent;
use doclite::core::experiment::{
    setup_environment, DataModel, Deployment, ExperimentSpec, SetupOptions,
};
use doclite::core::queries::{run_denormalized, run_normalized};
use doclite::sharding::NetworkModel;
use doclite::tpcds::{QueryId, QueryParams};

const SF: f64 = 0.003;

fn opts() -> SetupOptions {
    SetupOptions { network: NetworkModel::free(), max_chunk_size: 128 * 1024, ..SetupOptions::default() }
}

#[test]
fn all_three_setups_agree_on_every_query() {
    let params = QueryParams::for_scale(SF);

    let norm_standalone = setup_environment(
        &ExperimentSpec {
            id: 2,
            sf: SF,
            model: DataModel::Normalized,
            deployment: Deployment::Standalone,
        },
        &opts(),
    )
    .unwrap();
    let denorm_standalone = setup_environment(
        &ExperimentSpec {
            id: 3,
            sf: SF,
            model: DataModel::Denormalized,
            deployment: Deployment::Standalone,
        },
        &opts(),
    )
    .unwrap();
    let norm_sharded = setup_environment(
        &ExperimentSpec {
            id: 1,
            sf: SF,
            model: DataModel::Normalized,
            deployment: Deployment::Sharded,
        },
        &opts(),
    )
    .unwrap();

    for q in QueryId::ALL {
        let a = run_normalized(norm_standalone.store(), q, &params).unwrap();
        let b = run_denormalized(denorm_standalone.store(), q, &params).unwrap();
        let c = run_normalized(norm_sharded.store(), q, &params).unwrap();
        assert!(
            !a.is_empty(),
            "{q}: empty result set — the workload generator should give every query rows at SF {SF}"
        );
        assert_results_equivalent(&format!("{q}: normalized vs denormalized"), &a, &b);
        assert_results_equivalent(&format!("{q}: standalone vs sharded"), &a, &c);
    }
}

#[test]
fn queries_materialize_output_collections() {
    let params = QueryParams::for_scale(SF);
    let env = setup_environment(
        &ExperimentSpec {
            id: 3,
            sf: SF,
            model: DataModel::Denormalized,
            deployment: Deployment::Standalone,
        },
        &opts(),
    )
    .unwrap();
    for q in QueryId::ALL {
        let docs = run_denormalized(env.store(), q, &params).unwrap();
        let out = doclite::core::queries::output_collection(q);
        assert_eq!(
            env.store().collection_len(out),
            docs.len(),
            "{q}: $out collection size"
        );
    }
}
