//! Cluster-level behaviour the thesis discusses: chunk distribution,
//! jumbo chunks from low-cardinality keys (Fig 2.7), network accounting
//! asymmetry between targeted and broadcast queries, and result parity
//! across scatter modes.

use doclite::bson::doc;
use doclite::docstore::Filter;
use doclite::sharding::{
    chaos, ClusterConfig, NetMode, NetworkModel, ScatterMode, ShardKey, ShardedCluster,
};
use doclite::tpcds::{Generator, TableId};
use std::time::Duration;

fn loaded_cluster(key: ShardKey) -> ShardedCluster {
    let cluster = ShardedCluster::new(3, "t", NetworkModel::lan());
    cluster
        .shard_collection("store_sales", key, 128 * 1024)
        .unwrap();
    let gen = Generator::new(0.002);
    cluster
        .router()
        .insert_many(
            "store_sales",
            gen.documents(TableId::StoreSales).collect::<Vec<_>>(),
        )
        .unwrap();
    cluster.balance().unwrap();
    cluster
}

#[test]
fn high_cardinality_range_key_splits_and_balances() {
    let cluster = loaded_cluster(ShardKey::range(["ss_ticket_number"]));
    let meta = cluster.router().config().meta("store_sales").unwrap();
    assert!(meta.chunks.len() >= 3, "expected several chunks, got {}", meta.chunks.len());
    meta.check_invariants().unwrap();
    assert_eq!(meta.chunks.iter().filter(|c| c.jumbo).count(), 0);
    // Every shard holds data after balancing.
    for shard in cluster.router().shards() {
        assert!(
            shard.db().get_collection("store_sales").map(|c| c.len()).unwrap_or(0) > 0,
            "{} holds nothing",
            shard.name()
        );
    }
}

#[test]
fn low_cardinality_key_produces_jumbo_chunks() {
    // ss_store_sk has 12 distinct values at this scale: chunks pinned to
    // one key value cannot split (thesis Fig 2.7).
    let cluster = loaded_cluster(ShardKey::range(["ss_store_sk"]));
    let meta = cluster.router().config().meta("store_sales").unwrap();
    assert!(
        meta.chunks.iter().any(|c| c.jumbo),
        "expected jumbo chunks from a 12-value shard key"
    );
}

#[test]
fn targeted_queries_touch_fewer_shards_and_less_network() {
    let cluster = loaded_cluster(ShardKey::range(["ss_ticket_number"]));
    let router = cluster.router();

    router.net_stats().reset();
    let hits = router.find("store_sales", &Filter::eq("ss_ticket_number", 5i64));
    assert!(!hits.is_empty());
    let targeted_exchanges = router.net_stats().exchanges();

    router.net_stats().reset();
    let scan = router.find("store_sales", &Filter::eq("ss_quantity", 10i64));
    assert!(!scan.is_empty());
    let broadcast_exchanges = router.net_stats().exchanges();

    assert!(
        targeted_exchanges < broadcast_exchanges,
        "targeted {targeted_exchanges} vs broadcast {broadcast_exchanges}"
    );
}

#[test]
fn parallel_network_time_is_below_serial_on_broadcast() {
    let cluster = loaded_cluster(ShardKey::hashed("ss_ticket_number"));
    let router = cluster.router();
    router.net_stats().reset();
    router.find("store_sales", &Filter::gt("ss_quantity", 90i64));
    let stats = router.net_stats();
    assert!(stats.parallel_time() <= stats.serial_time());
    assert!(stats.serial_time() > Duration::ZERO);
}

#[test]
fn scatter_modes_and_deployments_agree_on_results() {
    let mut cluster = loaded_cluster(ShardKey::range(["ss_ticket_number"]));
    let f = Filter::between("ss_quantity", 10i64, 20i64);
    let parallel = cluster.router().find("store_sales", &f).len();
    cluster.router_mut().set_scatter_mode(ScatterMode::Sequential);
    let sequential = cluster.router().find("store_sales", &f).len();
    assert_eq!(parallel, sequential);

    // Stand-alone reference.
    let db = doclite::docstore::Database::new("ref");
    let gen = Generator::new(0.002);
    db.collection("store_sales")
        .insert_many(gen.documents(TableId::StoreSales))
        .unwrap();
    assert_eq!(db.get_collection("store_sales").unwrap().find(&f).len(), parallel);
}

#[test]
fn replica_backed_cluster_survives_member_loss_and_converges() {
    // The production topology of thesis Fig 2.5: every shard is a
    // replica set. Queries must not notice a single member dying, and
    // after recovery all members must hold identical data.
    let cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards: 3,
        replicas_per_shard: 3,
        db_name: "t_rs".into(),
        network: NetworkModel::lan(),
        ..ClusterConfig::default()
    });
    cluster
        .shard_collection("store_sales", ShardKey::range(["ss_ticket_number"]), 128 * 1024)
        .unwrap();
    let gen = Generator::new(0.002);
    cluster
        .router()
        .insert_many(
            "store_sales",
            gen.documents(TableId::StoreSales).collect::<Vec<_>>(),
        )
        .unwrap();
    cluster.balance().unwrap();
    for entry in cluster.router().config().shard_entries() {
        assert_eq!(entry.members, 3, "{} registered wrong member count", entry.name);
    }

    let f = Filter::between("ss_quantity", 10i64, 20i64);
    let healthy = cluster.router().find("store_sales", &f).len();
    assert!(healthy > 0);

    // Kill the primary of every shard: elections promote secondaries
    // and the same query returns the same rows.
    for shard in cluster.router().shards() {
        shard.replica_set().fail_member(0);
    }
    assert_eq!(cluster.router().find("store_sales", &f).len(), healthy);

    // Writes land on the new primaries; recovery resyncs the old ones.
    cluster
        .router()
        .insert_one("store_sales", doc! {"ss_ticket_number" => -1i64})
        .unwrap();
    chaos::heal_all(&cluster);
    chaos::check_convergence(&cluster).unwrap();
    assert_eq!(cluster.router().find("store_sales", &f).len(), healthy);
}

#[test]
fn sleep_mode_network_actually_costs_wall_time() {
    let slow = NetworkModel {
        round_trip: Duration::from_millis(3),
        bytes_per_sec: u64::MAX,
        mode: NetMode::Sleep,
    };
    let cluster = ShardedCluster::new(3, "t", slow);
    cluster
        .shard_collection("c", ShardKey::range(["k"]), 1 << 20)
        .unwrap();
    cluster.router().insert_one("c", doc! {"k" => 1i64}).unwrap();
    let t0 = std::time::Instant::now();
    // Broadcast find: one leg per chunk-holding shard plus merge.
    cluster.router().find("c", &Filter::eq("x", 1i64));
    assert!(t0.elapsed() >= Duration::from_millis(3));
}
