//! The generic SQL translator must produce pipelines that compute the
//! same results as the hand-written Appendix B translations for the
//! queries it covers (Q7 and Q21 — the pure select-from-where
//! instances; Q46/Q50's self-join forms are hand-translated, as in the
//! thesis).

mod common;

use common::assert_results_equivalent;
use doclite::core::experiment::{
    setup_environment, DataModel, Deployment, ExperimentSpec, SetupOptions,
};
use doclite::core::queries::run_denormalized;
use doclite::core::translate::translate_denormalized;
use doclite::sharding::NetworkModel;
use doclite::sql::parse;
use doclite::tpcds::{sql_text, QueryId, QueryParams};

const SF: f64 = 0.003;

fn env() -> doclite::core::experiment::Environment {
    setup_environment(
        &ExperimentSpec {
            id: 3,
            sf: SF,
            model: DataModel::Denormalized,
            deployment: Deployment::Standalone,
        },
        &SetupOptions { network: NetworkModel::free(), max_chunk_size: 128 * 1024, ..SetupOptions::default() },
    )
    .unwrap()
}

fn check_translated(q: QueryId) {
    let env = env();
    let params = QueryParams::for_scale(SF);
    let sql = sql_text(q, &params);
    let stmt = parse(&sql).unwrap_or_else(|e| panic!("{q} parse: {e}"));
    let translation = translate_denormalized(&stmt).unwrap_or_else(|e| panic!("{q}: {e}"));

    let translated = env
        .store()
        .aggregate(&translation.source, &translation.pipeline)
        .unwrap();
    let hand = run_denormalized(env.store(), q, &params).unwrap();
    assert!(!hand.is_empty(), "{q}: hand pipeline returned nothing");
    // The translated pipeline may carry bookkeeping fields (`_keep`) or a
    // different projection shape for the derived-table form; compare on
    // the hand pipeline's fields.
    let fields: Vec<String> = hand[0].keys().filter(|k| *k != "_id").cloned().collect();
    let strip = |docs: &[doclite::bson::Document]| -> Vec<doclite::bson::Document> {
        docs.iter()
            .map(|d| {
                let mut out = doclite::bson::Document::new();
                for f in &fields {
                    if let Some(v) = d.get_path(f) {
                        out.set(f.clone(), v);
                    }
                }
                out
            })
            .collect()
    };
    assert_results_equivalent(&format!("{q}: translated vs hand"), &strip(&translated), &strip(&hand));
}

#[test]
fn query_7_translates_mechanically() {
    check_translated(QueryId::Q7);
}

#[test]
fn query_21_translates_mechanically() {
    check_translated(QueryId::Q21);
}

#[test]
fn self_join_queries_are_rejected_with_clear_errors() {
    let params = QueryParams::for_scale(SF);
    for q in [QueryId::Q46, QueryId::Q50] {
        let stmt = parse(&sql_text(q, &params)).unwrap();
        let err = translate_denormalized(&stmt).unwrap_err();
        assert!(err.0.contains("hand translation"), "{q}: unexpected error {err}");
    }
}

#[test]
fn translated_q7_pipeline_shape() {
    let params = QueryParams::for_scale(SF);
    let stmt = parse(&sql_text(QueryId::Q7, &params)).unwrap();
    let t = translate_denormalized(&stmt).unwrap();
    assert_eq!(t.source, "store_sales_dn");
    use doclite::docstore::Stage;
    let stages = t.pipeline.stages();
    assert!(matches!(stages[0], Stage::Match(_)));
    assert!(stages.iter().any(|s| matches!(s, Stage::Group { .. })));
    assert!(stages.iter().any(|s| matches!(s, Stage::Sort(_))));
}
