//! Property-based tests over the core data structures and invariants.

use doclite::bson::{codec, Document, Value};
use doclite::docstore::query::matcher::{compile, matches, matches_compiled};
use doclite::docstore::{CompoundKey, Filter, OrdValue};
use doclite::sharding::{ConfigServer, ShardKey};
use proptest::prelude::*;

// ----- generators -------------------------------------------------------

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::Int32),
        any::<i64>().prop_map(Value::Int64),
        // Finite doubles only: NaN breaks Eq-based roundtrip comparison,
        // and the engine's canonical order handles NaN separately.
        prop::num::f64::NORMAL.prop_map(Value::Double),
        "[a-zA-Z0-9 _-]{0,12}".prop_map(Value::String),
        any::<i64>().prop_map(Value::DateTime),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(|fields| {
                let mut d = Document::new();
                for (k, v) in fields {
                    d.set(k, v);
                }
                Value::Document(d)
            }),
        ]
    })
}

fn arb_document() -> impl Strategy<Value = Document> {
    prop::collection::vec(("[a-z]{1,8}", arb_value()), 0..8).prop_map(|fields| {
        let mut d = Document::new();
        for (k, v) in fields {
            d.set(k, v);
        }
        d
    })
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        Just(Filter::True),
        ("[ab]", arb_scalar()).prop_map(|(p, v)| Filter::eq(p, v)),
        ("[ab]", arb_scalar()).prop_map(|(p, v)| Filter::ne(p, v)),
        ("[ab]", arb_scalar()).prop_map(|(p, v)| Filter::gt(p, v)),
        ("[ab]", arb_scalar()).prop_map(|(p, v)| Filter::lte(p, v)),
        ("[ab]", prop::collection::vec(arb_scalar(), 0..6))
            .prop_map(|(p, vs)| Filter::In { path: p, values: vs }),
        ("[ab]", prop::collection::vec(arb_scalar(), 0..6))
            .prop_map(|(p, vs)| Filter::Nin { path: p, values: vs }),
        ("[ab]", any::<bool>()).prop_map(|(p, e)| Filter::Exists { path: p, exists: e }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::Or),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::Nor),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

// ----- properties -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn codec_roundtrips_any_document(doc in arb_document()) {
        let bytes = codec::encode_document(&doc);
        prop_assert_eq!(bytes.len(), codec::encoded_size(&doc));
        let back = codec::decode_document(&bytes).unwrap();
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn compiled_matcher_agrees_with_interpreter(
        filter in arb_filter(),
        doc in arb_document(),
    ) {
        let compiled = compile(&filter);
        prop_assert_eq!(matches(&filter, &doc), matches_compiled(&compiled, &doc));
    }

    #[test]
    fn canonical_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        let ab = a.canonical_cmp(&b);
        let ba = b.canonical_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            // equal values must hash identically (group/index keys)
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            OrdValue(a.clone()).hash(&mut ha);
            OrdValue(b.clone()).hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn canonical_order_is_transitive(
        a in arb_scalar(),
        b in arb_scalar(),
        c in arb_scalar(),
    ) {
        use std::cmp::Ordering::*;
        let mut vals = [a, b, c];
        vals.sort_by(|x, y| x.canonical_cmp(y));
        prop_assert_ne!(vals[0].canonical_cmp(&vals[1]), Greater);
        prop_assert_ne!(vals[1].canonical_cmp(&vals[2]), Greater);
        prop_assert_ne!(vals[0].canonical_cmp(&vals[2]), Greater);
    }

    #[test]
    fn chunk_map_invariants_survive_random_splits_and_moves(
        splits in prop::collection::vec((any::<i64>(), 0usize..8), 0..12),
    ) {
        let cfg = ConfigServer::new();
        cfg.shard_collection("c", ShardKey::range(["k"]), 0);
        for (key, chunk_hint) in splits {
            let meta = cfg.meta("c").unwrap();
            let idx = chunk_hint % meta.chunks.len();
            let k = CompoundKey::from_values(vec![Value::Int64(key)]);
            cfg.split_chunk("c", idx, k, 0.5);
            let meta = cfg.meta("c").unwrap();
            cfg.move_chunk("c", idx % meta.chunks.len(), (key as usize) % 3);
            let meta = cfg.meta("c").unwrap();
            prop_assert!(meta.check_invariants().is_ok());
            // Every key routes to exactly one chunk that contains it.
            for probe in [i64::MIN, -1, 0, 1, key, i64::MAX] {
                let pk = CompoundKey::from_values(vec![Value::Int64(probe)]);
                let ci = meta.chunk_for(&pk);
                prop_assert!(meta.chunks[ci].contains(&pk));
            }
        }
    }

    #[test]
    fn sort_then_filter_equals_filter_then_sort(
        docs in prop::collection::vec(arb_document(), 0..20),
        filter in arb_filter(),
    ) {
        use doclite::docstore::agg::exec::sort_documents;
        let spec = vec![("a".to_owned(), 1), ("b".to_owned(), -1)];

        let mut sorted_first: Vec<Document> = docs.clone();
        sort_documents(&mut sorted_first, &spec);
        let a: Vec<Document> = sorted_first
            .into_iter()
            .filter(|d| matches(&filter, d))
            .collect();

        let mut b: Vec<Document> = docs.into_iter().filter(|d| matches(&filter, d)).collect();
        sort_documents(&mut b, &spec);

        // Both orders agree on the multiset; and on sort keys position by
        // position (stability can differ only among tied keys).
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(
                x.get_path("a").unwrap_or(Value::Null).canonical_cmp(&y.get_path("a").unwrap_or(Value::Null)),
                std::cmp::Ordering::Equal
            );
        }
    }

    #[test]
    fn hashed_shard_key_routes_deterministically(keys in prop::collection::vec(any::<i64>(), 1..50)) {
        let sk = ShardKey::hashed("k");
        for k in keys {
            let mut d = Document::new();
            d.set("k", Value::Int64(k));
            prop_assert_eq!(sk.extract(&d), sk.extract(&d));
        }
    }
}
