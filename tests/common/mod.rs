//! Shared helpers for cross-crate integration tests.

use doclite::bson::{Document, Value};

/// Rounds every double in a document copy to 6 decimals, so results that
/// differ only in floating-point summation order compare equal.
pub fn rounded(doc: &Document) -> Document {
    let mut out = Document::with_capacity(doc.len());
    for (k, v) in doc.iter() {
        if k == "_id" {
            // Engine-assigned ids differ run to run; drop them.
            continue;
        }
        out.set(k.clone(), round_value(v));
    }
    out
}

fn round_value(v: &Value) -> Value {
    match v {
        Value::Double(d) => Value::Double((d * 1e6).round() / 1e6),
        Value::Document(d) => Value::Document(rounded(d)),
        Value::Array(items) => Value::Array(items.iter().map(round_value).collect()),
        other => other.clone(),
    }
}

/// Asserts two result sets are equivalent as multisets of rounded
/// documents, reporting the first difference.
pub fn assert_results_equivalent(label: &str, a: &[Document], b: &[Document]) {
    let mut ra: Vec<Document> = a.iter().map(rounded).collect();
    let mut rb: Vec<Document> = b.iter().map(rounded).collect();
    let key = |d: &Document| doclite::bson::json::to_json(d);
    ra.sort_by_key(&key);
    rb.sort_by_key(&key);
    assert_eq!(ra.len(), rb.len(), "{label}: result counts differ");
    for (x, y) in ra.iter().zip(rb.iter()) {
        assert_eq!(x, y, "{label}: result documents differ");
    }
}
