//! End-to-end flow of thesis Chapter 4: dsdgen-style `.dat` files →
//! migration algorithm → collections → denormalization → queries.

mod common;

use common::assert_results_equivalent;
use doclite::core::experiment::{
    setup_environment, DataModel, Deployment, ExperimentSpec, SetupOptions,
};
use doclite::core::{migrate_all, run_denormalized};
use doclite::docstore::Database;
use doclite::sharding::NetworkModel;
use doclite::tpcds::{Generator, QueryId, QueryParams, TableId};
use std::path::PathBuf;

const SF: f64 = 0.002;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("doclite-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn dat_migration_matches_table_3_6_counts() {
    let dir = tmpdir("counts");
    let gen = Generator::new(SF);
    doclite::tpcds::write_all(&dir, &gen).unwrap();

    let db = Database::new("Dataset_it");
    let reports = migrate_all(&db, &dir).unwrap();
    assert_eq!(reports.len(), 24);
    for r in &reports {
        assert_eq!(r.rows, gen.row_count(r.table), "{}", r.table);
        assert_eq!(db.get_collection(r.table.name()).unwrap().len() as u64, r.rows);
    }
    // Load-time observation (ii) of Section 4.3 is testable as volume:
    // stored bytes scale with rows for the same table at two scales.
    let ss = reports
        .iter()
        .find(|r| r.table == TableId::StoreSales)
        .unwrap();
    assert!(ss.stored_bytes > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn queries_over_migrated_dat_data_match_direct_loads() {
    // Migrating via .dat files and loading directly from the generator
    // must be observationally identical: same query answers.
    let dir = tmpdir("query");
    let gen = Generator::new(SF);
    for t in doclite::core::experiment::WORKLOAD_TABLES {
        doclite::tpcds::write_table(&dir, &gen, t).unwrap();
    }
    for t in [TableId::Reason, TableId::TimeDim] {
        doclite::tpcds::write_table(&dir, &gen, t).unwrap();
    }

    let db = Database::new("Dataset_dat");
    for t in doclite::core::experiment::WORKLOAD_TABLES {
        doclite::core::migrate_table(&db, &dir, t).unwrap();
    }
    for t in [TableId::Reason, TableId::TimeDim] {
        doclite::core::migrate_table(&db, &dir, t).unwrap();
    }
    doclite::core::experiment::build_denormalized(&db).unwrap();

    let direct = setup_environment(
        &ExperimentSpec {
            id: 3,
            sf: SF,
            model: DataModel::Denormalized,
            deployment: Deployment::Standalone,
        },
        &SetupOptions { network: NetworkModel::free(), max_chunk_size: 128 * 1024, ..SetupOptions::default() },
    )
    .unwrap();

    let params = QueryParams::for_scale(SF);
    for q in [QueryId::Q7, QueryId::Q21] {
        let a = run_denormalized(&db, q, &params).unwrap();
        let b = run_denormalized(direct.store(), q, &params).unwrap();
        assert_results_equivalent(&format!("{q}: dat vs direct"), &a, &b);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
