//! # doclite
//!
//! Facade crate for the reproduction of *"Performance Evaluation of
//! Analytical Queries on a Stand-alone and Sharded Document Store"*
//! (Raghavendra, 2015): re-exports every subsystem under one roof so
//! examples, integration tests, and downstream users address a single
//! dependency.
//!
//! * [`bson`] — the document value model and binary codec;
//! * [`docstore`] — the storage/query engine (collections, indexes,
//!   match language, updates, aggregation pipeline, dump/restore);
//! * [`sharding`] — shard keys, chunks, config metadata, the `mongos`
//!   router, balancer, replica sets, capacity planning, and the
//!   simulated network;
//! * [`tpcds`] — the 24-table schema catalog, seeded data generator,
//!   `.dat` IO, and the four-query workload;
//! * [`sql`] — the analytical SQL lexer/parser/AST (and unparser);
//! * [`core`] — the thesis's algorithms (migration, denormalization,
//!   query translation) and the Table 4.1 experiment runner.
//!
//! ```
//! use doclite::docstore::{Database, Filter};
//! use doclite::bson::doc;
//!
//! let db = Database::new("demo");
//! db.collection("c").insert_one(doc! {"k" => 1i64}).unwrap();
//! assert_eq!(db.collection("c").find(&Filter::eq("k", 1i64)).len(), 1);
//! ```

pub use doclite_bson as bson;
pub use doclite_core as core;
pub use doclite_docstore as docstore;
pub use doclite_sharding as sharding;
pub use doclite_sql as sql;
pub use doclite_tpcds as tpcds;
