#!/usr/bin/env bash
set -u
cd "$(dirname "$0")/.."
mkdir -p reports
cargo build --release -p doclite-bench --bins 2>&1 | tail -1
for bin in table_3_6 table_4_3 table_4_4 table_4_5 fig_4_9 fig_4_10 fig_4_11 ablations future_work; do
    echo "=== $bin ==="
    ./target/release/$bin > "reports/$bin.txt" 2>&1
    echo "exit=$? (reports/$bin.txt)"
done
